//! Asynchronous bucket SSSP on native threads — the CPU port of the
//! paper's §4.3 manager/worker scheme.
//!
//! Phase 1 of each bucket runs *asynchronously*: workers pull active
//! vertices from a shared pool, relax their light edges immediately
//! (updates visible at once through the atomic distance array) and push
//! newly activated vertices back — no layer barriers. Phases 2 & 3 are
//! a synchronous parallel sweep, as in the paper.

use super::fetch_min;
use crate::stats::trace::{self, Phase};
use crate::stats::{SsspResult, UpdateStats};
use crate::{Csr, VertexId, Weight, INF};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Asynchronous bucket SSSP with `threads` workers.
pub fn async_bucket_sssp(
    graph: &Csr,
    source: VertexId,
    delta: Weight,
    threads: usize,
) -> SsspResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!(delta >= 1 && threads >= 1);
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    let updates = AtomicU64::new(0);
    let checks = AtomicU64::new(0);
    let pending: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    let mut stats = UpdateStats::default();
    let mut lo: u64 = 0;

    // Seed.
    let mut current: Vec<VertexId> = vec![source];
    pending[source as usize].store(true, Ordering::Relaxed);

    loop {
        let hi = lo + delta as u64;

        // ---- Phase 1: asynchronous light-edge processing ----
        // Async phase 1 has no layers; all events carry layer 0.
        trace::set_context(lo, Phase::Light, 0);
        let shard = trace::shard();
        let pool = Mutex::new(current);
        let in_flight = AtomicUsize::new(0);
        let active = AtomicU64::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let task = {
                        let mut guard = pool.lock();
                        match guard.pop() {
                            Some(v) => {
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                Some(v)
                            }
                            None => None,
                        }
                    };
                    let Some(v) = task else {
                        // Pool empty: done only if nobody is working.
                        if in_flight.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        std::hint::spin_loop();
                        continue;
                    };
                    pending[v as usize].store(false, Ordering::SeqCst);
                    let dv = dist[v as usize].load(Ordering::SeqCst);
                    let dvu = dv as u64;
                    if dvu >= lo && dvu < hi {
                        active.fetch_add(1, Ordering::Relaxed);
                        let mut local_new: Vec<VertexId> = Vec::new();
                        for (u, w) in graph.edges(v) {
                            if w >= delta {
                                continue;
                            }
                            checks.fetch_add(1, Ordering::Relaxed);
                            let nd = dv.saturating_add(w);
                            if nd < dist[u as usize].load(Ordering::Relaxed) {
                                let old = fetch_min(&dist[u as usize], nd);
                                if nd < old {
                                    updates.fetch_add(1, Ordering::Relaxed);
                                    if let Some(sh) = &shard {
                                        sh.record(v, u, old, nd);
                                    }
                                    if (nd as u64) < hi
                                        && !pending[u as usize].swap(true, Ordering::SeqCst)
                                    {
                                        local_new.push(u);
                                    }
                                }
                            }
                        }
                        if !local_new.is_empty() {
                            pool.lock().extend(local_new);
                        }
                    }
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                });
            }
        })
        .expect("phase-1 scope failed");
        stats.bucket_active.push(active.load(Ordering::Relaxed));
        stats.phase1_layers.push(1); // async: a single layer

        // ---- Phases 2 & 3: synchronous sweep ----
        // Relax heavy edges of settled vertices; find the next window.
        trace::set_context(lo, Phase::Heavy, 0);
        let shard = trace::shard();
        let next_lo = AtomicU32::new(INF);
        let next_active = Mutex::new(Vec::<VertexId>::new());
        let chunk = n.div_ceil(threads).max(1);
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let dist = &dist;
                let checks = &checks;
                let updates = &updates;
                let shard = &shard;
                scope.spawn(move |_| {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(n);
                    for (v, dcell) in dist.iter().enumerate().take(end).skip(start) {
                        let dv = dcell.load(Ordering::Relaxed);
                        let dvu = dv as u64;
                        if dvu < lo || dvu >= hi {
                            continue;
                        }
                        for (u, w) in graph.edges(v as VertexId) {
                            if w < delta {
                                continue;
                            }
                            checks.fetch_add(1, Ordering::Relaxed);
                            let nd = dv.saturating_add(w);
                            if nd < dist[u as usize].load(Ordering::Relaxed) {
                                let old = fetch_min(&dist[u as usize], nd);
                                if nd < old {
                                    updates.fetch_add(1, Ordering::Relaxed);
                                    if let Some(sh) = shard {
                                        sh.record(v as VertexId, u, old, nd);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        })
        .expect("phase-2 scope failed");

        // Phase 3 runs after a barrier (the scope join): collecting
        // concurrently with phase 2 would miss vertices another worker
        // pushes into the next window after this worker scanned them.
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let next_active = &next_active;
                let next_lo = &next_lo;
                let dist = &dist;
                scope.spawn(move |_| {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(n);
                    let mut local: Vec<VertexId> = Vec::new();
                    for (v, dcell) in dist.iter().enumerate().take(end).skip(start) {
                        let dv = dcell.load(Ordering::Relaxed);
                        if dv == INF {
                            continue;
                        }
                        let dvu = dv as u64;
                        if dvu >= hi {
                            if dvu < hi + delta as u64 {
                                local.push(v as VertexId);
                            } else {
                                fetch_min(next_lo, dv);
                            }
                        }
                    }
                    if !local.is_empty() {
                        next_active.lock().extend(local);
                    }
                });
            }
        })
        .expect("phase-3 scope failed");

        let mut next: Vec<VertexId> = std::mem::take(&mut *next_active.lock());
        if next.is_empty() {
            let jump = next_lo.load(Ordering::Relaxed);
            if jump == INF {
                break; // all settled
            }
            // Jump the empty window and re-collect (host-side).
            let jlo = jump as u64;
            let jhi = jlo + delta as u64;
            for (v, dcell) in dist.iter().enumerate() {
                let dv = dcell.load(Ordering::Relaxed);
                let dvu = dv as u64;
                if dv != INF && dvu >= jlo && dvu < jhi {
                    next.push(v as VertexId);
                }
            }
            lo = jlo;
        } else {
            lo = hi;
        }
        for &v in &next {
            pending[v as usize].store(true, Ordering::Relaxed);
        }
        current = next;
    }

    stats.total_updates = updates.load(Ordering::Relaxed);
    stats.checks = checks.load(Ordering::Relaxed);
    let dist = dist.into_iter().map(std::sync::atomic::AtomicU32::into_inner).collect();
    SsspResult { source, dist, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(120, 700, seed);
        uniform_weights(&mut el, seed + 3);
        build_undirected(&el)
    }

    #[test]
    fn matches_dijkstra_async() {
        for seed in 0..3 {
            let g = graph(seed);
            let oracle = dijkstra(&g, 0);
            for threads in [1, 2, 4] {
                let r = async_bucket_sssp(&g, 0, 120, threads);
                assert_eq!(r.dist, oracle.dist, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn empty_window_jump() {
        let el = EdgeList::from_edges(4, (0..3).map(|i| (i, i + 1, 1000)).collect());
        let g = build_undirected(&el);
        let r = async_bucket_sssp(&g, 0, 50, 2);
        assert_eq!(r.dist, vec![0, 1000, 2000, 3000]);
        // Jumping keeps the bucket count near the path length.
        assert!(r.stats.bucket_active.len() <= 8);
    }

    #[test]
    fn work_stats_sane() {
        let g = graph(5);
        let r = async_bucket_sssp(&g, 0, 200, 2);
        assert!(r.stats.total_updates >= r.reached() as u64 - 1);
        assert!(r.work_ratio().unwrap() >= 1.0);
    }
}
