//! Native multithreaded CPU implementations (crossbeam-based).
//!
//! These serve two roles: they are real, wall-clock-benchmarkable
//! SSSP implementations (used by the criterion benches), and they are
//! the "CPU port" of the paper's ideas — [`async_bucket`] runs phase 1
//! asynchronously over a shared work pool exactly like §4.3's
//! manager/worker scheme, while [`parallel_delta`] is the conventional
//! layer-synchronous Δ-stepping.

pub mod async_bucket;
pub mod parallel_delta;

pub use async_bucket::async_bucket_sssp;
pub use parallel_delta::parallel_delta_stepping;

use std::sync::atomic::{AtomicU32, Ordering};

/// Lock-free `fetch_min` on an atomic distance; returns the previous
/// value (like CUDA's `atomicMin`). Public so the baseline crate's
/// CPU comparators share the exact same primitive.
#[inline]
pub fn fetch_min(cell: &AtomicU32, val: u32) -> u32 {
    let mut cur = cell.load(Ordering::Relaxed);
    while val < cur {
        match cell.compare_exchange_weak(cur, val, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(prev) => return prev,
            Err(next) => cur = next,
        }
    }
    cur
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_min_returns_previous() {
        let a = AtomicU32::new(10);
        assert_eq!(fetch_min(&a, 7), 10);
        assert_eq!(a.load(Ordering::Relaxed), 7);
        assert_eq!(fetch_min(&a, 9), 7);
        assert_eq!(a.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
