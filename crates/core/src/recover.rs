//! Detect-and-recover execution: run a GPU SSSP entry point (possibly
//! under an armed fault plan), audit the result without an oracle, and
//! climb a recovery ladder until the answer is certified — so RDBS
//! never returns a silently wrong answer.
//!
//! Detection is cheap and oracle-free:
//!
//! * the per-bucket monotonicity audit inside [`crate::gpu::rdbs`]
//!   (distances never increase, settled vertices stay settled — only
//!   active when faults are armed, so fault-free runs pay nothing);
//! * a final O(V+E) post-pass, [`crate::validate::audit_sssp`]: no
//!   edge left relaxable, and every reached vertex certified by a
//!   tight-edge path from the source.
//!
//! The recovery ladder, each rung bounded and recorded in the
//! [`RecoveryReport`]:
//!
//! 1. **Repair sweep** — reset the audit-flagged vertices and run a
//!    bounded host-side re-relaxation seeded from the intact ones;
//! 2. **Synchronous rerun** — rerun fault-free with the barrier-per-
//!    layer [`RdbsConfig::sync_delta`] variant (for multi-GPU, a
//!    fault-free multi rerun);
//! 3. **Graceful degradation** — sequential Dijkstra.
//!
//! Recovery reruns are fault-free by default (transient-fault
//! semantics): the plan stays on the faulted device and is not
//! re-armed. [`run_gpu_recovered_refault`] models *persistent* faults
//! instead — the same spec is re-armed on the rerun device — and the
//! ladder still never returns silently wrong, because [`finish`]
//! audits the rerun's output and falls through to the sequential rung
//! when the re-faulted rerun is itself corrupt.

use crate::gpu::{
    multi_gpu_sssp, multi_gpu_sssp_faulted, run_gpu_on, MultiGpuConfig, RdbsConfig, Variant,
};
use crate::seq::dijkstra;
use crate::service::{ServiceConfig, SsspService};
use crate::stats::{SsspResult, UpdateStats};
use crate::validate::audit_sssp;
use crate::{saturating_relax, Csr, Dist, VertexId, INF};
use rdbs_gpu_sim::{Device, DeviceConfig, FaultEvent, FaultPlan, FaultSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Upper bound on full-edge re-relaxation rounds in the repair sweep.
const REPAIR_ROUNDS: u32 = 32;

/// Explicit retry budget for the recovery ladder. Every recovery is
/// bounded: at most `max_rungs` rungs are *attempted* (a rung skipped
/// for free — e.g. the repair sweep when the attempt panicked and left
/// no distances — costs nothing), and the rung-1 sweep re-relaxes for
/// at most `repair_rounds` rounds. When the budget runs out before a
/// rung certifies an answer, the run ends in the typed
/// [`RecoveryOutcome::Exhausted`] instead of climbing further — never
/// an unbounded or implicit loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryBudget {
    /// Maximum ladder rungs attempted: 1 = repair sweep only,
    /// 2 = + synchronous rerun, 3 = + sequential fallback (default).
    pub max_rungs: u32,
    /// Round bound for the rung-1 repair sweep.
    pub repair_rounds: u32,
}

impl Default for RecoveryBudget {
    fn default() -> Self {
        Self { max_rungs: 3, repair_rounds: REPAIR_ROUNDS }
    }
}

impl std::fmt::Display for RecoveryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} rung(s), {} repair round(s)", self.max_rungs, self.repair_rounds)
    }
}

/// One rung climbed on the recovery ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryStep {
    /// Bounded re-relaxation seeded from the audit-flagged vertices.
    RepairSweep { rounds: u32, relaxations: u64, clean: bool },
    /// Fault-free rerun with the synchronous variant.
    SyncRerun { clean: bool },
    /// Graceful degradation to sequential Dijkstra.
    SequentialFallback,
}

impl std::fmt::Display for RecoveryStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryStep::RepairSweep { rounds, relaxations, clean } => write!(
                f,
                "repair sweep: {rounds} rounds, {relaxations} relaxations — {}",
                if *clean { "clean" } else { "still dirty" }
            ),
            RecoveryStep::SyncRerun { clean } => write!(
                f,
                "synchronous fault-free rerun — {}",
                if *clean { "clean" } else { "still dirty" }
            ),
            RecoveryStep::SequentialFallback => write!(f, "sequential Dijkstra fallback"),
        }
    }
}

/// How the run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The first attempt passed every audit — nothing to recover.
    Clean,
    /// A fault was detected and a ladder rung produced a certified
    /// answer.
    Recovered,
    /// All GPU-side rungs failed; the answer comes from sequential
    /// Dijkstra.
    Degraded,
    /// The retry budget ran out before any rung certified an answer.
    /// The carried distances are **best-effort and uncertified** —
    /// callers must treat them as unusable for correctness purposes
    /// (the chaos matrix grades this as an error cell, never compared
    /// against the oracle).
    Exhausted,
}

impl std::fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryOutcome::Clean => "clean",
            RecoveryOutcome::Recovered => "recovered",
            RecoveryOutcome::Degraded => "degraded",
            RecoveryOutcome::Exhausted => "exhausted",
        })
    }
}

/// What was injected, what was detected, and what recovery did.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// The fault spec the run was executed under, if any.
    pub fault: Option<FaultSpec>,
    /// Total injections the plan performed.
    pub injections: u64,
    /// Injection log (capped device-side).
    pub fault_events: Vec<FaultEvent>,
    /// Per-bucket monotonicity audit hits during the run.
    pub monotonicity_hits: usize,
    /// Vertices flagged by the final audit of the faulted attempt.
    pub flagged: usize,
    /// Panic message if the faulted attempt crashed outright (e.g. a
    /// bit flip in a row offset driving an out-of-bounds access).
    pub panic: Option<String>,
    /// Ladder rungs climbed, in order (empty for a clean run).
    pub steps: Vec<RecoveryStep>,
    /// The retry budget the ladder ran under.
    pub budget: RecoveryBudget,
    pub outcome: RecoveryOutcome,
}

impl RecoveryReport {
    /// Whether any detector fired on the first attempt.
    pub fn detected(&self) -> bool {
        self.monotonicity_hits > 0 || self.flagged > 0 || self.panic.is_some()
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.fault {
            Some(spec) => writeln!(
                f,
                "fault: {} rate {} seed {} — {} injection(s)",
                spec.model, spec.rate, spec.seed, self.injections
            )?,
            None => writeln!(f, "fault: none")?,
        }
        write!(
            f,
            "detection: {} monotonicity hit(s), {} flagged vertex(es)",
            self.monotonicity_hits, self.flagged
        )?;
        if let Some(msg) = &self.panic {
            write!(f, ", attempt panicked: {msg}")?;
        }
        writeln!(f)?;
        if self.steps.is_empty() {
            writeln!(f, "ladder: not needed")?;
        } else {
            writeln!(f, "ladder (budget {}):", self.budget)?;
            for (i, step) in self.steps.iter().enumerate() {
                writeln!(f, "  {}. {step}", i + 1)?;
            }
        }
        write!(f, "outcome: {}", self.outcome)
    }
}

/// An SSSP result carrying the recovery evidence.
pub struct RecoveredRun {
    pub result: SsspResult,
    pub report: RecoveryReport,
}

/// Run a single-device GPU variant under `fault` (or fault-free when
/// `None`), audit, and recover. The returned distances are always
/// audit-certified.
pub fn run_gpu_recovered(
    graph: &Csr,
    source: VertexId,
    variant: Variant,
    device_config: DeviceConfig,
    fault: Option<FaultSpec>,
) -> RecoveredRun {
    run_gpu_recovered_with(
        graph,
        source,
        variant,
        device_config,
        fault,
        false,
        RecoveryBudget::default(),
    )
}

/// Like [`run_gpu_recovered`], with an explicit ladder retry budget.
/// With a budget too small to reach a certifying rung the run ends in
/// the typed [`RecoveryOutcome::Exhausted`] carrying best-effort,
/// **uncertified** distances.
pub fn run_gpu_recovered_budgeted(
    graph: &Csr,
    source: VertexId,
    variant: Variant,
    device_config: DeviceConfig,
    fault: Option<FaultSpec>,
    budget: RecoveryBudget,
) -> RecoveredRun {
    run_gpu_recovered_with(graph, source, variant, device_config, fault, false, budget)
}

/// Like [`run_gpu_recovered`], but with persistent-fault semantics:
/// the fault spec is re-armed on the fresh device used for the rung-2
/// synchronous rerun, so recovery itself executes under fire. Safe
/// because the rerun's output is audited before it is accepted — a
/// still-corrupt rerun is recorded as a dirty [`RecoveryStep::SyncRerun`]
/// and the ladder degrades to sequential Dijkstra.
pub fn run_gpu_recovered_refault(
    graph: &Csr,
    source: VertexId,
    variant: Variant,
    device_config: DeviceConfig,
    fault: Option<FaultSpec>,
) -> RecoveredRun {
    run_gpu_recovered_with(
        graph,
        source,
        variant,
        device_config,
        fault,
        true,
        RecoveryBudget::default(),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_gpu_recovered_with(
    graph: &Csr,
    source: VertexId,
    variant: Variant,
    device_config: DeviceConfig,
    fault: Option<FaultSpec>,
    refault_rerun: bool,
    budget: RecoveryBudget,
) -> RecoveredRun {
    let mut device = Device::new(device_config.clone());
    if let Some(spec) = fault {
        device.arm_faults(FaultPlan::new(spec));
    }
    let attempt =
        catch_unwind(AssertUnwindSafe(|| run_gpu_on(&mut device, graph, source, variant)));
    let (injections, fault_events) = match device.disarm_faults() {
        Some(plan) => (plan.injections(), plan.log().to_vec()),
        None => (0, Vec::new()),
    };
    let (attempt, panic) = match attempt {
        Ok(run) => (Some((run.result, run.audit.len())), None),
        Err(payload) => (None, Some(panic_text(payload.as_ref()))),
    };
    let delta0 = match variant {
        Variant::Rdbs(cfg) => cfg.delta0,
        Variant::Baseline => None,
    };
    let rerun = |graph: &Csr, source: VertexId| {
        let mut fresh = Device::new(device_config.clone());
        if refault_rerun {
            if let Some(spec) = fault {
                fresh.arm_faults(FaultPlan::new(spec));
            }
        }
        let cfg = RdbsConfig { delta0, ..RdbsConfig::sync_delta() };
        run_gpu_on(&mut fresh, graph, source, Variant::Rdbs(cfg)).result
    };
    finish(graph, source, fault, injections, fault_events, attempt, panic, &rerun, budget)
}

/// Run the resident batched service ([`crate::service`]) under
/// `fault`, audit, and recover. The faulted query runs *after* a
/// fault-free warm-up query, so the attempt exercises recycled pooled
/// buffers — the reuse path the chaos matrix must show can never turn
/// a fault into a silent wrong answer. A typed [`ServiceError`]
/// (e.g. a queue overflow) counts as a detection and is recorded in
/// the report's `panic` field alongside real panics.
///
/// [`ServiceError`]: crate::service::ServiceError
pub fn run_service_recovered(
    graph: &Csr,
    source: VertexId,
    config: ServiceConfig,
    fault: Option<FaultSpec>,
) -> RecoveredRun {
    let device_config = config.device.clone();
    let delta0 = config.delta0;
    let mut service = SsspService::new(graph, config);
    let n = graph.num_vertices() as u32;
    if n > 1 {
        let _ = service.query((source + 1) % n); // warm the pooled buffers
    }
    if let Some(spec) = fault {
        service.arm_faults(spec);
    }
    let attempt = catch_unwind(AssertUnwindSafe(|| service.try_query(source)));
    let (injections, fault_events) = service.disarm_faults().unwrap_or((0, Vec::new()));
    let (attempt, panic) = match attempt {
        Ok(Ok(result)) => (Some((result, service.last_audit_hits())), None),
        Ok(Err(e)) => (None, Some(e.to_string())), // typed detection
        Err(payload) => (None, Some(panic_text(payload.as_ref()))),
    };
    let rerun = move |graph: &Csr, source: VertexId| {
        let mut fresh = Device::new(device_config.clone());
        let cfg = RdbsConfig { delta0, ..RdbsConfig::sync_delta() };
        run_gpu_on(&mut fresh, graph, source, Variant::Rdbs(cfg)).result
    };
    finish(
        graph,
        source,
        fault,
        injections,
        fault_events,
        attempt,
        panic,
        &rerun,
        RecoveryBudget::default(),
    )
}

/// Run the resident service's *concurrent* scheduler under `fault`,
/// audit, and recover. The scored query flies as the middle element of
/// a three-source batch spread across `config.streams` command
/// streams, after a fault-free warm-up — so injections land while
/// other queries are in flight on sibling streams and the detection +
/// ladder guarantee must hold with interleaved bucket execution. The
/// batch itself never errors (overflow escalates on device, then
/// degrades to a host oracle), so detection here rests on the
/// monotonicity audit (maxed across every in-flight query of the
/// batch), the final O(V+E) audit of the scored element, and panic
/// capture.
pub fn run_service_concurrent_recovered(
    graph: &Csr,
    source: VertexId,
    config: ServiceConfig,
    fault: Option<FaultSpec>,
) -> RecoveredRun {
    let device_config = config.device.clone();
    let delta0 = config.delta0;
    let mut service = SsspService::new(graph, config);
    let n = graph.num_vertices() as u32;
    let wrap = |k: u32| (source + k) % n;
    if n > 1 {
        let _ = service.query(wrap(1)); // warm the pooled buffers
    }
    if let Some(spec) = fault {
        service.arm_faults(spec);
    }
    let batch = [wrap(2), source, wrap(3)];
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let mut results = service.batch(&batch);
        results.swap_remove(1)
    }));
    let (injections, fault_events) = service.disarm_faults().unwrap_or((0, Vec::new()));
    let (attempt, panic) = match attempt {
        Ok(result) => (Some((result, service.last_audit_hits())), None),
        Err(payload) => (None, Some(panic_text(payload.as_ref()))),
    };
    let rerun = move |graph: &Csr, source: VertexId| {
        let mut fresh = Device::new(device_config.clone());
        let cfg = RdbsConfig { delta0, ..RdbsConfig::sync_delta() };
        run_gpu_on(&mut fresh, graph, source, Variant::Rdbs(cfg)).result
    };
    finish(
        graph,
        source,
        fault,
        injections,
        fault_events,
        attempt,
        panic,
        &rerun,
        RecoveryBudget::default(),
    )
}

/// Run the service's open-loop *traffic tier* under `fault`, audit,
/// and recover. The scored query arrives first (an empty admission
/// predictor always admits it), a sibling query runs alongside, a
/// past-deadline query exercises the typed shedding path, and a late
/// repeat of the scored source is answered from the answer cache — so
/// the graded result flows through the cache-replay path and the
/// detection + ladder guarantee must hold for cached answers too: a
/// corrupted device answer must never hide behind a bit-identical
/// replay.
pub fn run_service_traffic_recovered(
    graph: &Csr,
    source: VertexId,
    config: ServiceConfig,
    fault: Option<FaultSpec>,
) -> RecoveredRun {
    use crate::service::cache::CacheConfig;
    use crate::service::traffic::{ArrivalProcess, Outcome, Query, SourceMix, TrafficConfig};

    let device_config = config.device.clone();
    let delta0 = config.delta0;
    let mut service = SsspService::new(graph, config);
    let n = graph.num_vertices() as u32;
    let wrap = |k: u32| (source + k) % n;
    if n > 1 {
        let _ = service.query(wrap(1)); // warm the pooled buffers
    }
    if let Some(spec) = fault {
        service.arm_faults(spec);
    }
    let generous = 1e12;
    let queries = [
        Query { source, arrival_ms: 0.0, deadline_ms: generous },
        Query { source: wrap(2), arrival_ms: 0.0, deadline_ms: generous },
        // Deadline already blown at arrival: deterministically shed
        // (typed), never silently answered late.
        Query { source: wrap(3), arrival_ms: 0.01, deadline_ms: 0.0 },
        // Arrives long after the scored answer completes: served from
        // the cache, bit-identical to the faulted attempt's answer.
        Query { source, arrival_ms: 1e6, deadline_ms: generous },
    ];
    let cfg = TrafficConfig {
        arrivals: ArrivalProcess::Poisson { qps: 1.0 }, // unused: explicit queries
        offered: queries.len(),
        seed: 0,
        slo_ms: generous,
        tight_slo_ms: None,
        tight_every: 0,
        sources: SourceMix::Uniform,
        shed_margin: 1.0,
        cache: Some(CacheConfig::default()),
        approx_on_shed: false,
    };
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let report = service.serve_queries(&queries, &cfg);
        let replayed = report.outcomes.into_iter().nth(3).expect("four outcomes");
        match replayed {
            Outcome::Exact { result, .. } => result,
            other => panic!("the late repeat must be answered exactly, got {other:?}"),
        }
    }));
    let (injections, fault_events) = service.disarm_faults().unwrap_or((0, Vec::new()));
    let (attempt, panic) = match attempt {
        Ok(result) => (Some((result, service.last_audit_hits())), None),
        Err(payload) => (None, Some(panic_text(payload.as_ref()))),
    };
    let rerun = move |graph: &Csr, source: VertexId| {
        let mut fresh = Device::new(device_config.clone());
        let cfg = RdbsConfig { delta0, ..RdbsConfig::sync_delta() };
        run_gpu_on(&mut fresh, graph, source, Variant::Rdbs(cfg)).result
    };
    finish(
        graph,
        source,
        fault,
        injections,
        fault_events,
        attempt,
        panic,
        &rerun,
        RecoveryBudget::default(),
    )
}

/// Run the multi-GPU entry point under `fault` (armed on device 0),
/// audit, and recover. Rung 2 is a fault-free multi rerun.
pub fn run_multi_recovered(
    graph: &Csr,
    source: VertexId,
    config: &MultiGpuConfig,
    fault: Option<FaultSpec>,
) -> RecoveredRun {
    let attempt =
        catch_unwind(AssertUnwindSafe(|| multi_gpu_sssp_faulted(graph, source, config, fault)));
    let (attempt, injections, fault_events, panic) = match attempt {
        Ok(run) => (Some((run.result, 0)), run.fault_injections, run.fault_events, None),
        Err(payload) => (None, 0, Vec::new(), Some(panic_text(payload.as_ref()))),
    };
    let rerun = |graph: &Csr, source: VertexId| multi_gpu_sssp(graph, source, config).result;
    finish(
        graph,
        source,
        fault,
        injections,
        fault_events,
        attempt,
        panic,
        &rerun,
        RecoveryBudget::default(),
    )
}

/// Shared detection + ladder. `attempt` is the faulted attempt's
/// result plus its monotonicity-hit count (`None` if it panicked);
/// `rerun` is the fault-free rung-2 entry.
#[allow(clippy::too_many_arguments)]
fn finish(
    graph: &Csr,
    source: VertexId,
    fault: Option<FaultSpec>,
    injections: u64,
    fault_events: Vec<FaultEvent>,
    attempt: Option<(SsspResult, usize)>,
    panic: Option<String>,
    rerun: &dyn Fn(&Csr, VertexId) -> SsspResult,
    budget: RecoveryBudget,
) -> RecoveredRun {
    let mut report = RecoveryReport {
        fault,
        injections,
        fault_events,
        monotonicity_hits: 0,
        flagged: 0,
        panic,
        steps: Vec::new(),
        budget,
        outcome: RecoveryOutcome::Clean,
    };
    let mut rungs_used = 0u32;

    // ---- Detection ----
    let mut best = match attempt {
        Some((result, mono_hits)) => {
            report.monotonicity_hits = mono_hits;
            let audit = audit_sssp(graph, source, &result.dist);
            report.flagged = audit.flagged.len();
            if audit.is_clean() && mono_hits == 0 {
                return RecoveredRun { result, report };
            }
            // ---- Rung 1: bounded repair sweep ----
            if rungs_used >= budget.max_rungs {
                return exhaust(graph, source, Some(result), report);
            }
            rungs_used += 1;
            let mut repaired = result;
            let (rounds, relaxations, clean) = repair_sweep(
                graph,
                source,
                &mut repaired.dist,
                &audit.flagged,
                budget.repair_rounds,
            );
            report.steps.push(RecoveryStep::RepairSweep { rounds, relaxations, clean });
            if clean {
                report.outcome = RecoveryOutcome::Recovered;
                return RecoveredRun { result: repaired, report };
            }
            Some(repaired)
        }
        None => None, // panicked: no distances to repair
    };

    // ---- Rung 2: fault-free rerun of a synchronous variant ----
    if rungs_used >= budget.max_rungs {
        return exhaust(graph, source, best, report);
    }
    rungs_used += 1;
    match catch_unwind(AssertUnwindSafe(|| rerun(graph, source))) {
        Ok(rr) => {
            let clean = audit_sssp(graph, source, &rr.dist).is_clean();
            report.steps.push(RecoveryStep::SyncRerun { clean });
            if clean {
                report.outcome = RecoveryOutcome::Recovered;
                return RecoveredRun { result: rr, report };
            }
            best = Some(rr);
        }
        Err(_) => {
            report.steps.push(RecoveryStep::SyncRerun { clean: false });
        }
    }

    // ---- Rung 3: graceful degradation ----
    if rungs_used >= budget.max_rungs {
        return exhaust(graph, source, best, report);
    }
    report.steps.push(RecoveryStep::SequentialFallback);
    report.outcome = RecoveryOutcome::Degraded;
    RecoveredRun { result: dijkstra(graph, source), report }
}

/// Budget ran out before any rung certified an answer: end in the typed
/// [`RecoveryOutcome::Exhausted`], carrying the best uncertified
/// distances seen so far (or an all-`INF` placeholder when the attempt
/// panicked and no rung produced anything).
fn exhaust(
    graph: &Csr,
    source: VertexId,
    best: Option<SsspResult>,
    mut report: RecoveryReport,
) -> RecoveredRun {
    report.outcome = RecoveryOutcome::Exhausted;
    let result = best.unwrap_or_else(|| {
        let mut dist = vec![INF; graph.num_vertices()];
        dist[source as usize] = 0;
        SsspResult { source, dist, stats: UpdateStats::default() }
    });
    RecoveredRun { result, report }
}

/// Rung 1: reset the flagged vertices to `INF` (uncorrupted values are
/// kept as seeds) and re-relax over all edges, Bellman-Ford style,
/// until a fixpoint or the round budget. Never increases a kept value,
/// so an intact prefix of the solution is preserved. Returns
/// `(rounds, relaxations, audit-clean)`.
fn repair_sweep(
    graph: &Csr,
    source: VertexId,
    dist: &mut [Dist],
    flagged: &[VertexId],
    round_budget: u32,
) -> (u32, u64, bool) {
    for &v in flagged {
        dist[v as usize] = INF;
    }
    dist[source as usize] = if flagged.contains(&source) { 0 } else { dist[source as usize] };
    let mut rounds = 0u32;
    let mut relaxations = 0u64;
    while rounds < round_budget {
        rounds += 1;
        let mut changed = false;
        for (u, v, w) in graph.all_edges() {
            let du = dist[u as usize];
            if du == INF {
                continue;
            }
            let nd = saturating_relax(du, w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                relaxations += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let clean = audit_sssp(graph, source, dist).is_clean();
    (rounds, relaxations, clean)
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_against_dijkstra;
    use rdbs_gpu_sim::FaultModel;
    use rdbs_graph::builder::build_undirected;
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(120, 600, seed);
        uniform_weights(&mut el, seed + 9);
        build_undirected(&el)
    }

    fn tiny() -> DeviceConfig {
        DeviceConfig::test_tiny()
    }

    #[test]
    fn fault_free_run_is_clean() {
        let g = graph(1);
        let run = run_gpu_recovered(&g, 0, Variant::Rdbs(RdbsConfig::full()), tiny(), None);
        assert_eq!(run.report.outcome, RecoveryOutcome::Clean);
        assert!(run.report.steps.is_empty());
        assert!(!run.report.detected());
        check_against_dijkstra(&g, 0, &run.result.dist).unwrap();
    }

    #[test]
    fn dropped_atomics_are_never_silently_wrong() {
        let g = graph(2);
        for seed in 0..4 {
            let spec = FaultSpec::new(FaultModel::DroppedAtomicMin, 0.3, seed);
            let run =
                run_gpu_recovered(&g, 0, Variant::Rdbs(RdbsConfig::full()), tiny(), Some(spec));
            check_against_dijkstra(&g, 0, &run.result.dist)
                .unwrap_or_else(|m| panic!("seed {seed}: {m}\n{}", run.report));
        }
    }

    #[test]
    fn bit_flips_are_detected_and_recovered() {
        let g = graph(3);
        let mut detected_any = false;
        for seed in 0..4 {
            let spec = FaultSpec::new(FaultModel::BitFlip, 0.002, seed);
            let run =
                run_gpu_recovered(&g, 0, Variant::Rdbs(RdbsConfig::full()), tiny(), Some(spec));
            check_against_dijkstra(&g, 0, &run.result.dist)
                .unwrap_or_else(|m| panic!("seed {seed}: {m}\n{}", run.report));
            detected_any |= run.report.detected();
        }
        assert!(detected_any, "no seed produced a detectable flip");
    }

    #[test]
    fn repair_sweep_fixes_local_corruption() {
        let g = graph(4);
        let oracle = dijkstra(&g, 0);
        let mut dist = oracle.dist.clone();
        // Corrupt three vertices both ways.
        dist[10] = dist[10].saturating_add(1_000);
        dist[20] = dist[20].saturating_sub(dist[20].min(3));
        dist[30] = 0;
        let audit = audit_sssp(&g, 0, &dist);
        assert!(!audit.is_clean());
        let (_, _, clean) = repair_sweep(&g, 0, &mut dist, &audit.flagged, REPAIR_ROUNDS);
        assert!(clean);
        assert_eq!(dist, oracle.dist);
    }

    #[test]
    fn multi_gpu_message_loss_recovers() {
        let g = graph(5);
        let config = MultiGpuConfig {
            num_devices: 2,
            device: tiny(),
            interconnect_gbps: 50.0,
            exchange_latency_us: 5.0,
            delta0: None,
        };
        for seed in 0..3 {
            let spec = FaultSpec::new(FaultModel::LostMessage, 0.5, seed);
            let run = run_multi_recovered(&g, 0, &config, Some(spec));
            check_against_dijkstra(&g, 0, &run.result.dist)
                .unwrap_or_else(|m| panic!("seed {seed}: {m}\n{}", run.report));
        }
    }

    #[test]
    fn service_pooled_queries_are_never_silently_wrong() {
        // The faulted query runs on recycled pooled buffers (after a
        // fault-free warm-up) — reuse must not weaken the guarantee.
        let g = graph(7);
        let mut detected_any = false;
        for seed in 0..4 {
            let spec = FaultSpec::new(FaultModel::DroppedAtomicMin, 0.3, seed);
            let run = run_service_recovered(&g, 0, ServiceConfig::rdbs(tiny()), Some(spec));
            check_against_dijkstra(&g, 0, &run.result.dist)
                .unwrap_or_else(|m| panic!("seed {seed}: {m}\n{}", run.report));
            detected_any |= run.report.detected();
        }
        assert!(detected_any, "no seed tripped a detector on the pooled path");
    }

    #[test]
    fn concurrent_batches_are_never_silently_wrong() {
        // Faults land while three queries are in flight across four
        // command streams — interleaved bucket execution must not
        // weaken the zero-silent-wrong guarantee for the scored query.
        let g = graph(10);
        let mut detected_any = false;
        for seed in 0..4 {
            let spec = FaultSpec::new(FaultModel::DroppedAtomicMin, 0.3, seed);
            let config = ServiceConfig::rdbs(tiny()).with_streams(4);
            let run = run_service_concurrent_recovered(&g, 0, config, Some(spec));
            check_against_dijkstra(&g, 0, &run.result.dist)
                .unwrap_or_else(|m| panic!("seed {seed}: {m}\n{}", run.report));
            detected_any |= run.report.detected();
        }
        assert!(detected_any, "no seed tripped a detector under concurrency");
    }

    #[test]
    fn service_fault_free_run_is_clean() {
        let g = graph(8);
        let run = run_service_recovered(&g, 3, ServiceConfig::rdbs(tiny()), None);
        assert_eq!(run.report.outcome, RecoveryOutcome::Clean);
        assert!(!run.report.detected());
        check_against_dijkstra(&g, 3, &run.result.dist).unwrap();
    }

    #[test]
    fn persistent_faults_exhaust_the_ladder_without_lying() {
        // A directed path running *against* CSR edge order (source at
        // the high end) under a total atomic-min drop: rung 1's
        // Bellman-Ford gains one vertex per round, so the 199-hop
        // diameter defeats its 32-round budget, and with the spec
        // re-armed the rung-2 rerun is corrupt too. The audit must
        // reject that rerun and degrade to Dijkstra — the persistent-
        // fault cell is kept honest by the gate, not a fault-free
        // retry.
        let mut el = rdbs_graph::builder::EdgeList::new(200);
        for i in 0..199u32 {
            el.push(i + 1, i, 1);
        }
        let g = rdbs_graph::builder::build_directed(&el);
        let source = 199;
        let spec = FaultSpec::new(FaultModel::DroppedAtomicMin, 1.0, 0);
        let run = run_gpu_recovered_refault(
            &g,
            source,
            Variant::Rdbs(RdbsConfig::full()),
            tiny(),
            Some(spec),
        );
        check_against_dijkstra(&g, source, &run.result.dist)
            .unwrap_or_else(|m| panic!("{m}\n{}", run.report));
        assert!(
            run.report.steps.iter().any(|s| matches!(s, RecoveryStep::SyncRerun { clean: false })),
            "refaulted rerun was not exercised or came back clean:\n{}",
            run.report
        );
        assert_eq!(run.report.outcome, RecoveryOutcome::Degraded, "{}", run.report);

        // Moderate persistent rates must also never be silently wrong.
        let g = graph(9);
        for seed in 0..4 {
            let spec = FaultSpec::new(FaultModel::DroppedAtomicMin, 0.3, seed);
            let run = run_gpu_recovered_refault(
                &g,
                0,
                Variant::Rdbs(RdbsConfig::full()),
                tiny(),
                Some(spec),
            );
            check_against_dijkstra(&g, 0, &run.result.dist)
                .unwrap_or_else(|m| panic!("seed {seed}: {m}\n{}", run.report));
        }
    }

    #[test]
    fn exhausted_budget_yields_typed_outcome_not_a_lie() {
        // Same adversarial 199-hop path as the persistent-fault test:
        // the rung-1 sweep cannot certify within its round budget, so a
        // one-rung budget must end in the typed `Exhausted` outcome
        // after exactly one (dirty) repair-sweep step — never a silent
        // wrong answer and never an implicit extra rung.
        let mut el = rdbs_graph::builder::EdgeList::new(200);
        for i in 0..199u32 {
            el.push(i + 1, i, 1);
        }
        let g = rdbs_graph::builder::build_directed(&el);
        let source = 199;
        let spec = FaultSpec::new(FaultModel::DroppedAtomicMin, 1.0, 0);
        let budget = RecoveryBudget { max_rungs: 1, repair_rounds: REPAIR_ROUNDS };
        let run = run_gpu_recovered_budgeted(
            &g,
            source,
            Variant::Rdbs(RdbsConfig::full()),
            tiny(),
            Some(spec),
            budget,
        );
        assert_eq!(run.report.outcome, RecoveryOutcome::Exhausted, "{}", run.report);
        assert_eq!(run.report.budget, budget);
        assert_eq!(run.report.steps.len(), 1, "{}", run.report);
        assert!(
            matches!(run.report.steps[0], RecoveryStep::RepairSweep { clean: false, .. }),
            "{}",
            run.report
        );
        assert!(run.report.to_string().contains("exhausted"), "{}", run.report);

        // The default budget reaches a certifying rung on the same input.
        let full =
            run_gpu_recovered(&g, source, Variant::Rdbs(RdbsConfig::full()), tiny(), Some(spec));
        check_against_dijkstra(&g, source, &full.result.dist)
            .unwrap_or_else(|m| panic!("{m}\n{}", full.report));
        assert_eq!(full.report.outcome, RecoveryOutcome::Recovered, "{}", full.report);

        // And an explicit default budget is behaviourally identical to
        // the unbudgeted entry point.
        let dflt = run_gpu_recovered_budgeted(
            &g,
            source,
            Variant::Rdbs(RdbsConfig::full()),
            tiny(),
            Some(spec),
            RecoveryBudget::default(),
        );
        assert_eq!(dflt.result.dist, full.result.dist);
        assert_eq!(dflt.report.outcome, full.report.outcome);
        assert_eq!(dflt.report.steps, full.report.steps);
    }

    #[test]
    fn report_displays_the_ladder() {
        let g = graph(6);
        let spec = FaultSpec::new(FaultModel::DroppedAtomicMin, 1.0, 0);
        let run = run_gpu_recovered(&g, 0, Variant::Rdbs(RdbsConfig::full()), tiny(), Some(spec));
        let text = run.report.to_string();
        assert!(text.contains("outcome:"), "{text}");
        assert!(text.contains("dropped-atomic"), "{text}");
    }
}
