//! Dial's algorithm: Dijkstra with an integer bucket queue.
//!
//! The 1969 ancestor of Δ-stepping — `dist` values index into a
//! circular array of `max_weight + 1` buckets, giving O(m + n·W)
//! without a heap. It is exactly Δ-stepping with Δ = 1 and integer
//! weights (§2.2: "For Δ = 1, it is equivalent to Dijkstra's
//! algorithm"), and serves as a second work-optimal reference.

use crate::seq::wheel::BucketWheel;
use crate::stats::{SsspResult, UpdateStats};
use crate::{Csr, Dist, VertexId, INF};

/// Run Dial's algorithm. The bucket queue is a capped circular wheel
/// ([`crate::seq::wheel`]): any pending entry is within `w_max` of the
/// current minimum, so small weights fit the window exactly (the
/// classic layout, no collisions), while near-`u32::MAX` weights spill
/// to the overflow list and the cursor *jumps* across empty distance
/// ranges instead of scanning them. Memory is
/// `O(n + min(max_weight, WHEEL_SLOTS))` for any weight range.
pub fn dial(graph: &Csr, source: VertexId) -> SsspResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let w_max = graph.max_weight().max(1) as u64;
    let mut dist: Vec<Dist> = vec![INF; n];
    let mut stats = UpdateStats::default();
    // Bucket id == tentative distance (Δ = 1).
    let mut wheel = BucketWheel::new(w_max + 1);
    dist[source as usize] = 0;
    wheel.push(source, 0);

    let mut cursor = Some(0u64);
    while let Some(c) = cursor {
        while !wheel.current_is_empty() {
            for v in wheel.take_current() {
                let dv = dist[v as usize];
                if dv as u64 != c {
                    continue; // stale entry
                }
                for (u, w) in graph.edges(v) {
                    stats.checks += 1;
                    let nd = crate::saturating_relax(dv, w);
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        stats.total_updates += 1;
                        wheel.push(u, nd as u64);
                    }
                }
            }
        }
        cursor = wheel.advance(|v| {
            let d = dist[v as usize];
            (d != INF).then_some(d as u64)
        });
    }
    SsspResult { source, dist, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    #[test]
    fn matches_dijkstra() {
        for seed in 0..4 {
            let mut el = erdos_renyi(120, 600, seed);
            uniform_weights(&mut el, seed + 60);
            let g = build_undirected(&el);
            let a = dial(&g, 0);
            let b = dijkstra(&g, 0);
            assert_eq!(a.dist, b.dist, "seed {seed}");
        }
    }

    #[test]
    fn is_work_optimal_like_dijkstra() {
        let mut el = erdos_renyi(200, 1500, 3);
        uniform_weights(&mut el, 5);
        let g = build_undirected(&el);
        let dl = dial(&g, 0);
        let dj = dijkstra(&g, 0);
        // Both settle in nondecreasing distance order, so their update
        // counts agree up to tie-breaking among equal-distance vertices
        // (bucket LIFO vs heap order): allow 1% drift, no more.
        let drift = dl.stats.total_updates.abs_diff(dj.stats.total_updates);
        assert!(
            drift * 100 <= dj.stats.total_updates,
            "dial {} vs dijkstra {} updates",
            dl.stats.total_updates,
            dj.stats.total_updates
        );
    }

    #[test]
    fn unit_weights_degenerate_to_bfs() {
        let el = EdgeList::from_edges(5, (0..4).map(|i| (i, i + 1, 1)).collect());
        let g = build_undirected(&el);
        let r = dial(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn disconnected() {
        let el = EdgeList::from_edges(3, vec![(0, 1, 9)]);
        let g = build_undirected(&el);
        assert_eq!(dial(&g, 0).dist, vec![0, 9, INF]);
    }
}
