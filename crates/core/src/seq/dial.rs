//! Dial's algorithm: Dijkstra with an integer bucket queue.
//!
//! The 1969 ancestor of Δ-stepping — `dist` values index into a
//! circular array of `max_weight + 1` buckets, giving O(m + n·W)
//! without a heap. It is exactly Δ-stepping with Δ = 1 and integer
//! weights (§2.2: "For Δ = 1, it is equivalent to Dijkstra's
//! algorithm"), and serves as a second work-optimal reference.

use crate::stats::{SsspResult, UpdateStats};
use crate::{Csr, Dist, VertexId, INF};

/// Run Dial's algorithm. Memory is `O(n + max_weight)`; suited to the
/// workspace's small integer weights (≤ 1000).
pub fn dial(graph: &Csr, source: VertexId) -> SsspResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let w_max = graph.max_weight().max(1) as usize;
    let num_buckets = w_max + 1;
    let mut dist: Vec<Dist> = vec![INF; n];
    let mut stats = UpdateStats::default();
    // Circular bucket array indexed by dist % (w_max + 1): any pending
    // entry has distance within w_max of the current minimum, so no
    // wrap-around collision is possible.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); num_buckets];
    let mut remaining = 1usize;
    dist[source as usize] = 0;
    buckets[0].push(source);

    let mut cursor = 0usize; // current tentative distance
    while remaining > 0 {
        let slot = cursor % num_buckets;
        while let Some(v) = buckets[slot].pop() {
            remaining -= 1;
            let dv = dist[v as usize];
            if dv as usize != cursor {
                continue; // stale entry
            }
            for (u, w) in graph.edges(v) {
                stats.checks += 1;
                let nd = crate::saturating_relax(dv, w);
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    stats.total_updates += 1;
                    buckets[nd as usize % num_buckets].push(u);
                    remaining += 1;
                }
            }
        }
        cursor += 1;
        // Safety valve: distances are bounded by (n-1) * w_max.
        if cursor as u64 > n as u64 * w_max as u64 + 1 {
            break;
        }
    }
    SsspResult { source, dist, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    #[test]
    fn matches_dijkstra() {
        for seed in 0..4 {
            let mut el = erdos_renyi(120, 600, seed);
            uniform_weights(&mut el, seed + 60);
            let g = build_undirected(&el);
            let a = dial(&g, 0);
            let b = dijkstra(&g, 0);
            assert_eq!(a.dist, b.dist, "seed {seed}");
        }
    }

    #[test]
    fn is_work_optimal_like_dijkstra() {
        let mut el = erdos_renyi(200, 1500, 3);
        uniform_weights(&mut el, 5);
        let g = build_undirected(&el);
        let dl = dial(&g, 0);
        let dj = dijkstra(&g, 0);
        // Both settle in nondecreasing distance order, so their update
        // counts agree up to tie-breaking among equal-distance vertices
        // (bucket LIFO vs heap order): allow 1% drift, no more.
        let drift = dl.stats.total_updates.abs_diff(dj.stats.total_updates);
        assert!(
            drift * 100 <= dj.stats.total_updates,
            "dial {} vs dijkstra {} updates",
            dl.stats.total_updates,
            dj.stats.total_updates
        );
    }

    #[test]
    fn unit_weights_degenerate_to_bfs() {
        let el = EdgeList::from_edges(5, (0..4).map(|i| (i, i + 1, 1)).collect());
        let g = build_undirected(&el);
        let r = dial(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn disconnected() {
        let el = EdgeList::from_edges(3, vec![(0, 1, 9)]);
        let g = build_undirected(&el);
        assert_eq!(dial(&g, 0).dist, vec![0, 9, INF]);
    }
}
