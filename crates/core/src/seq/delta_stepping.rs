//! Classic three-phase Δ-stepping (Meyer & Sanders), instrumented.
//!
//! This is the §2.2 reference the paper's motivation experiments run
//! on (Graph500 reference code): phase 1 repeatedly relaxes light
//! edges of the current bucket until it stops refilling (each pass is
//! one *layer* — Fig. 3's iterations), phase 2 relaxes the heavy edges
//! of everything settled in the bucket, phase 3 advances to the next
//! non-empty bucket.
//!
//! [`delta_stepping_traced`] additionally labels every successful
//! update valid/invalid against a final-distance oracle, regenerating
//! Fig. 2 (bucket occupancy) and Fig. 3 (layer counts, valid vs total
//! updates of the peak bucket) exactly.

use crate::seq::wheel::BucketWheel;
use crate::stats::{trace, SsspResult, UpdateStats};
use crate::{Csr, Dist, VertexId, Weight, INF};

/// Per-bucket trace of one Δ-stepping run.
#[derive(Clone, Debug, Default)]
pub struct BucketTrace {
    /// Bucket index (`floor(dist / Δ)`).
    pub bucket_id: u64,
    /// Active vertices processed in phase 1 (non-stale pops,
    /// counting re-activations — Fig. 2's y-axis).
    pub active: u64,
    /// Active vertices per phase-1 layer (Fig. 3's series).
    pub layer_active: Vec<u64>,
    /// Successful updates during phase 1.
    pub phase1_updates: u64,
    /// Phase-1 updates that wrote a final distance.
    pub phase1_valid_updates: u64,
    /// Successful updates during phase 2 (heavy edges).
    pub phase2_updates: u64,
}

/// Result plus per-bucket traces.
#[derive(Clone, Debug)]
pub struct DeltaSteppingRun {
    pub result: SsspResult,
    pub buckets: Vec<BucketTrace>,
    pub delta: Weight,
}

impl DeltaSteppingRun {
    /// Index of the bucket with the most phase-1 activity (the "peak
    /// overhead" bucket of §3.3).
    pub fn peak_bucket(&self) -> Option<usize> {
        (0..self.buckets.len()).max_by_key(|&i| self.buckets[i].active)
    }
}

/// Plain Δ-stepping (no validity oracle).
pub fn delta_stepping(graph: &Csr, source: VertexId, delta: Weight) -> SsspResult {
    run(graph, source, delta, None).result
}

/// Δ-stepping with full tracing; `final_dist` (e.g. from
/// [`crate::seq::dijkstra()`](fn@crate::seq::dijkstra)) enables valid-update labelling.
pub fn delta_stepping_traced(
    graph: &Csr,
    source: VertexId,
    delta: Weight,
    final_dist: Option<&[Dist]>,
) -> DeltaSteppingRun {
    run(graph, source, delta, final_dist)
}

fn run(
    graph: &Csr,
    source: VertexId,
    delta: Weight,
    final_dist: Option<&[Dist]>,
) -> DeltaSteppingRun {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!(delta >= 1, "delta must be at least 1");
    let mut dist: Vec<Dist> = vec![INF; n];
    let mut stats = UpdateStats::default();
    let mut traces: Vec<BucketTrace> = Vec::new();

    // Buckets live in a capped circular wheel: pending buckets span at
    // most ⌈w_max/Δ⌉ + 1 ids at any time, so the usual weight ranges
    // fit the window exactly; near-`u32::MAX` distances spill to the
    // overflow list instead of growing a dist/Δ-indexed array without
    // bound, and phase 3 jumps over empty bucket ranges.
    let bucket_of = |d: Dist| (d / delta) as u64;
    let span = graph.max_weight().max(1) as u64 / delta as u64 + 2;
    let mut wheel = BucketWheel::new(span);

    dist[source as usize] = 0;
    wheel.push(source, 0);

    let valid = |v: VertexId, d: Dist| -> bool { final_dist.is_some_and(|f| f[v as usize] == d) };

    let mut cursor = Some(0u64);
    while let Some(i) = cursor {
        let mut trace = BucketTrace { bucket_id: i, ..Default::default() };
        let mut trace_layer = 0u32;
        // Settled set for phase 2 (each vertex recorded once).
        let mut settled: Vec<VertexId> = Vec::new();
        let mut settled_mark = std::collections::HashSet::new();

        // Phase 1: drain the bucket layer by layer.
        while !wheel.current_is_empty() {
            let layer = wheel.take_current();
            let mut layer_active = 0u64;
            if trace::armed() {
                trace::set_context(i, trace::Phase::Light, trace_layer);
            }
            trace_layer += 1;
            for v in layer {
                let dv = dist[v as usize];
                if dv == INF || bucket_of(dv) != i {
                    continue; // stale entry
                }
                layer_active += 1;
                if settled_mark.insert(v) {
                    settled.push(v);
                }
                // Relax light edges.
                for (u, w) in graph.edges(v) {
                    if w >= delta {
                        continue;
                    }
                    stats.checks += 1;
                    let nd = crate::saturating_relax(dv, w);
                    if nd < dist[u as usize] {
                        if trace::armed() {
                            trace::record(v, u, dist[u as usize], nd);
                        }
                        dist[u as usize] = nd;
                        stats.total_updates += 1;
                        trace.phase1_updates += 1;
                        if valid(u, nd) {
                            trace.phase1_valid_updates += 1;
                        }
                        wheel.push(u, bucket_of(nd));
                    }
                }
            }
            if layer_active > 0 {
                trace.layer_active.push(layer_active);
                trace.active += layer_active;
            }
        }

        // Phase 2: heavy edges of everything settled in this bucket.
        if trace::armed() {
            trace::set_context(i, trace::Phase::Heavy, 0);
        }
        for &v in &settled {
            let dv = dist[v as usize];
            for (u, w) in graph.edges(v) {
                if w < delta {
                    continue;
                }
                stats.checks += 1;
                let nd = crate::saturating_relax(dv, w);
                if nd < dist[u as usize] {
                    if trace::armed() {
                        trace::record(v, u, dist[u as usize], nd);
                    }
                    dist[u as usize] = nd;
                    stats.total_updates += 1;
                    trace.phase2_updates += 1;
                    wheel.push(u, bucket_of(nd));
                }
            }
        }
        stats.phase1_layers.push(trace.layer_active.len() as u32);
        stats.bucket_active.push(trace.active);
        traces.push(trace);
        // Phase 3: jump to the next non-empty bucket.
        cursor = wheel.advance(|v| {
            let d = dist[v as usize];
            (d != INF).then(|| bucket_of(d))
        });
    }

    // Record the peak bucket's layer series in the shared stats.
    if let Some(peak) = (0..traces.len()).max_by_key(|&k| traces[k].active) {
        stats.peak_bucket_layer_active = traces[peak].layer_active.clone();
    }

    DeltaSteppingRun { result: SsspResult { source, dist, stats }, buckets: traces, delta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra::dijkstra;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn random_graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(100, 500, seed);
        uniform_weights(&mut el, seed + 50);
        build_undirected(&el)
    }

    #[test]
    fn matches_dijkstra_various_deltas() {
        for seed in 0..4 {
            let g = random_graph(seed);
            let oracle = dijkstra(&g, 0);
            for delta in [1, 3, 100, 1000, 10_000] {
                let r = delta_stepping(&g, 0, delta);
                assert_eq!(r.dist, oracle.dist, "seed {seed} delta {delta}");
            }
        }
    }

    #[test]
    fn delta_one_is_dijkstra_like() {
        // Δ=1 degenerates to Dijkstra (every bucket one distance value)
        // — work ratio must be near-minimal.
        let g = random_graph(9);
        let r = delta_stepping_traced(&g, 0, 1, None);
        let dj = dijkstra(&g, 0);
        assert_eq!(r.result.dist, dj.dist);
    }

    #[test]
    fn delta_inf_is_bellman_ford_like() {
        // A single bucket holds everything.
        let g = random_graph(2);
        let r = delta_stepping_traced(&g, 0, 1_000_000, None);
        assert_eq!(r.buckets.len(), 1);
        assert!(r.buckets[0].layer_active.len() > 1);
    }

    #[test]
    fn traced_valid_updates_consistent() {
        let g = random_graph(4);
        let oracle = dijkstra(&g, 0);
        let r = delta_stepping_traced(&g, 0, 200, Some(&oracle.dist));
        let total_valid: u64 = r.buckets.iter().map(|b| b.phase1_valid_updates).sum();
        // Phase-1 valid updates can't exceed reached vertices.
        assert!(total_valid <= oracle.reached() as u64);
        // Total updates ≥ valid updates.
        let p1: u64 = r.buckets.iter().map(|b| b.phase1_updates).sum();
        assert!(p1 >= total_valid);
        // Peak bucket exists and its series matches the shared stats.
        let peak = r.peak_bucket().unwrap();
        assert_eq!(r.result.stats.peak_bucket_layer_active, r.buckets[peak].layer_active);
    }

    #[test]
    fn bucket_occupancy_rises_then_falls_on_powerlaw() {
        // The Fig. 2 shape: occupancy peaks in an early-middle bucket.
        let mut el = rdbs_graph::generate::preferential_attachment(3000, 4, 8);
        uniform_weights(&mut el, 11);
        let g = build_undirected(&el);
        let r = delta_stepping_traced(&g, 0, g.max_weight() / 10, None);
        let occ: Vec<u64> = r.buckets.iter().map(|b| b.active).collect();
        let peak_idx = r.peak_bucket().unwrap();
        assert!(peak_idx > 0, "peak should not be bucket 0");
        assert!(occ[peak_idx] > occ[0]);
        assert!(occ[peak_idx] >= *occ.last().unwrap());
    }

    #[test]
    fn path_graph_buckets() {
        let el = EdgeList::from_edges(5, (0..4).map(|i| (i, i + 1, 10)).collect());
        let g = build_undirected(&el);
        let r = delta_stepping_traced(&g, 0, 10, None);
        // dist = 0,10,20,30,40 → buckets 0..4, one vertex each... but
        // every relaxation is a heavy edge (w == Δ), so phase 2 does
        // the work.
        assert_eq!(r.result.dist, vec![0, 10, 20, 30, 40]);
        let p2: u64 = r.buckets.iter().map(|b| b.phase2_updates).sum();
        assert_eq!(p2, 4);
    }
}
