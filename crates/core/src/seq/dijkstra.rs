//! Dijkstra's algorithm with a binary heap — the correctness oracle.

use crate::stats::{SsspResult, UpdateStats};
use crate::{Csr, Dist, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source shortest paths by Dijkstra's algorithm.
///
/// Runs in `O((n + m) log n)`; every reached vertex is settled exactly
/// once, so `total_updates` is minimal — the paper's work-efficiency
/// gold standard.
pub fn dijkstra(graph: &Csr, source: VertexId) -> SsspResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    let mut stats = UpdateStats::default();
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in graph.edges(u) {
            let nd = crate::saturating_relax(d, w);
            stats.checks += 1;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                stats.total_updates += 1;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    SsspResult { source, dist, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_graph::builder::{build_undirected, EdgeList};

    /// The paper's Fig. 1 (a) graph: 8 vertices, 13 undirected edges.
    pub(crate) fn fig1_graph() -> Csr {
        let el = EdgeList::from_edges(
            8,
            vec![
                (0, 1, 5),
                (0, 2, 1),
                (0, 3, 3),
                (1, 3, 1),
                (2, 3, 1),
                (0, 5, 1),
                (3, 5, 1),
                (0, 7, 6),
                (3, 7, 3),
                (1, 4, 1),
                (2, 6, 1),
                (4, 6, 7),
                (6, 7, 4),
            ],
        );
        build_undirected(&el)
    }

    #[test]
    fn fig1_distances() {
        let g = fig1_graph();
        let r = dijkstra(&g, 0);
        // Hand-checked shortest distances from vertex 0.
        assert_eq!(r.dist[0], 0);
        assert_eq!(r.dist[2], 1); // 0-2
        assert_eq!(r.dist[3], 2); // 0-2-3
        assert_eq!(r.dist[5], 1); // 0-5
        assert_eq!(r.dist[1], 3); // 0-2-3-1
        assert_eq!(r.dist[4], 4); // 0-2-3-1-4
        assert_eq!(r.dist[6], 2); // 0-2-6
        assert_eq!(r.dist[7], 5); // 0-2-3-7 = 2+3
        assert_eq!(r.reached(), 8);
    }

    #[test]
    fn disconnected_vertex_unreached() {
        let el = EdgeList::from_edges(3, vec![(0, 1, 2)]);
        let g = build_undirected(&el);
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0, 2, INF]);
        assert_eq!(r.reached(), 2);
    }

    #[test]
    fn single_vertex() {
        let g = Csr::empty(1);
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0]);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_panics() {
        let g = Csr::empty(1);
        let _ = dijkstra(&g, 5);
    }

    #[test]
    fn triangle_inequality_holds() {
        let el = rdbs_graph::generate::erdos_renyi(64, 256, 3);
        let mut el = el;
        rdbs_graph::generate::uniform_weights(&mut el, 5);
        let g = build_undirected(&el);
        let r = dijkstra(&g, 0);
        for (u, v, w) in g.all_edges() {
            let (du, dv) = (r.dist[u as usize], r.dist[v as usize]);
            if du != INF {
                assert!(dv as u64 <= du as u64 + w as u64, "edge ({u},{v},{w})");
            }
        }
    }
}
