//! A bounded circular bucket wheel (Dial's trick) shared by
//! [`crate::seq::dial`] and [`crate::seq::delta_stepping`].
//!
//! The classic implementations index an array by bucket id, which is
//! fine for the workspace's usual weights (≤ 1000) but allocates
//! billions of slots when distances approach `u32::MAX` (tiny Δ, or
//! Dial — whose bucket id *is* the distance). The wheel caps the
//! resident window at [`WHEEL_SLOTS`] slots covering bucket ids
//! `[base, base + W)`; anything pushed beyond the window waits in an
//! overflow list. Because at most one bucket id of the window maps to
//! each slot, there are no modular collisions. When the window drains,
//! the wheel *jumps* `base` to the smallest pending bucket (recomputed
//! from current distances, which also discards stale overflow entries)
//! instead of stepping through empty slots one by one — so sparse
//! distance ranges cost time proportional to pending work, not to the
//! numeric range of the distances.
//!
//! Memory is `O(n + WHEEL_SLOTS)` regardless of Δ or the weight range.

use crate::VertexId;

/// Resident window width, in buckets. Pending bucket spans are at most
/// `⌈w_max/Δ⌉ + 1` wide, so for the common weight ranges the whole
/// span fits and the overflow list stays empty; the cap only engages
/// for near-`u32::MAX` weights.
pub(crate) const WHEEL_SLOTS: usize = 4096;

/// A circular bucket queue over `u64` bucket ids.
pub(crate) struct BucketWheel {
    slots: Vec<Vec<VertexId>>,
    /// Bucket id currently mapped to slot `base % slots.len()`.
    base: u64,
    /// Entries resident in `slots`.
    in_wheel: usize,
    /// Entries pushed past the window, reclassified on refill.
    overflow: Vec<VertexId>,
}

impl BucketWheel {
    /// `span` is the widest possible pending-bucket span (e.g.
    /// `w_max/Δ + 2`); the wheel allocates `min(span, WHEEL_SLOTS)`
    /// slots.
    pub fn new(span: u64) -> Self {
        let width = span.clamp(1, WHEEL_SLOTS as u64) as usize;
        Self { slots: vec![Vec::new(); width], base: 0, in_wheel: 0, overflow: Vec::new() }
    }

    /// Number of resident slots — the allocation bound under test.
    #[cfg(test)]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Queue `v` for bucket `b`. Pushes are never below the current
    /// bucket (non-negative weights guarantee it); a defensive clamp
    /// keeps an out-of-range entry processable rather than lost.
    pub fn push(&mut self, v: VertexId, b: u64) {
        let b = b.max(self.base);
        let width = self.slots.len() as u64;
        if b - self.base < width {
            self.slots[(b % width) as usize].push(v);
            self.in_wheel += 1;
        } else {
            self.overflow.push(v);
        }
    }

    /// Whether the current bucket's slot still has entries.
    pub fn current_is_empty(&self) -> bool {
        self.slots[(self.base % self.slots.len() as u64) as usize].is_empty()
    }

    /// Drain the current bucket's slot (phase-1 layers re-push into it).
    pub fn take_current(&mut self) -> Vec<VertexId> {
        let slot = (self.base % self.slots.len() as u64) as usize;
        let taken = std::mem::take(&mut self.slots[slot]);
        self.in_wheel -= taken.len();
        taken
    }

    /// Advance to the next non-empty bucket and return its id, or
    /// `None` when nothing is pending anywhere. `bucket_of` maps a
    /// vertex to its *current* bucket (`None` to discard the entry) —
    /// used to reclassify overflow entries on refill, so stale
    /// overflow copies land wherever their improved distance says.
    pub fn advance(&mut self, bucket_of: impl Fn(VertexId) -> Option<u64>) -> Option<u64> {
        let width = self.slots.len() as u64;
        loop {
            if self.in_wheel > 0 {
                for step in 1..=width {
                    let b = self.base + step;
                    if !self.slots[(b % width) as usize].is_empty() {
                        self.base = b;
                        return Some(b);
                    }
                }
                unreachable!("in_wheel > 0 but every slot is empty");
            }
            if self.overflow.is_empty() {
                return None;
            }
            // Jump straight to the smallest pending bucket and re-push
            // the overflow against the new window.
            let pending = std::mem::take(&mut self.overflow);
            let min_b = pending.iter().filter_map(|&v| bucket_of(v)).min();
            let Some(min_b) = min_b else { continue };
            self.base = min_b;
            for v in pending {
                if let Some(b) = bucket_of(v) {
                    self.push(v, b);
                }
            }
            if !self.current_is_empty() {
                return Some(self.base);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_capped() {
        assert_eq!(BucketWheel::new(10).slot_count(), 10);
        assert_eq!(BucketWheel::new(u32::MAX as u64 + 2).slot_count(), WHEEL_SLOTS);
        assert_eq!(BucketWheel::new(0).slot_count(), 1);
    }

    #[test]
    fn drains_in_bucket_order_within_the_window() {
        let mut w = BucketWheel::new(8);
        w.push(3, 3);
        w.push(1, 1);
        w.push(5, 5);
        w.push(0, 0);
        let ids = |w: &mut BucketWheel| {
            let mut seen = vec![];
            if !w.current_is_empty() {
                seen.extend(w.take_current());
            }
            while let Some(_b) = w.advance(|_| None) {
                seen.extend(w.take_current());
            }
            seen
        };
        assert_eq!(ids(&mut w), vec![0, 1, 3, 5]);
    }

    #[test]
    fn far_pushes_overflow_and_jump_refill_finds_them() {
        let mut w = BucketWheel::new(4);
        w.push(9, 1_000_000); // far beyond the 4-slot window
        w.push(7, 2);
        assert_eq!(w.take_current(), Vec::<VertexId>::new());
        assert_eq!(w.advance(|_| Some(1_000_000)), Some(2));
        assert_eq!(w.take_current(), vec![7]);
        // Wheel empty → the jump lands directly on the far bucket.
        assert_eq!(w.advance(|_| Some(1_000_000)), Some(1_000_000));
        assert_eq!(w.take_current(), vec![9]);
        assert_eq!(w.advance(|_| None), None);
    }

    #[test]
    fn refill_reclassifies_by_current_bucket() {
        let mut w = BucketWheel::new(2);
        w.push(4, 100);
        w.push(5, 200);
        // By refill time vertex 4 improved to bucket 50; 5 is stale.
        let b = w.advance(|v| if v == 4 { Some(50) } else { None });
        assert_eq!(b, Some(50));
        assert_eq!(w.take_current(), vec![4]);
        assert_eq!(w.advance(|_| None), None);
    }
}
