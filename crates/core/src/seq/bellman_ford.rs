//! Round-synchronous Bellman-Ford (frontier/push variant).
//!
//! Each round relaxes every out-edge of the current frontier; the next
//! frontier is the set of improved vertices. This is exactly the
//! execution the paper's Fig. 1 (b) traces and the conceptual model of
//! its BL baseline: parallel-friendly but work-inefficient, with a
//! synchronization barrier between rounds (§2.1, §3).

use crate::stats::{SsspResult, UpdateStats};
use crate::{Csr, VertexId, INF};

/// Frontier-based Bellman-Ford. `stats.phase1_layers` holds one entry
/// with the round count; `peak_bucket_layer_active` the per-round
/// frontier sizes (useful for the Fig. 1 motivation example).
pub fn bellman_ford(graph: &Csr, source: VertexId) -> SsspResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    let mut stats = UpdateStats::default();
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut in_next = vec![false; n];
    let mut rounds = 0u32;
    while !frontier.is_empty() {
        rounds += 1;
        stats.peak_bucket_layer_active.push(frontier.len() as u64);
        let mut next: Vec<VertexId> = Vec::new();
        for &u in &frontier {
            let du = dist[u as usize];
            for (v, w) in graph.edges(u) {
                stats.checks += 1;
                let nd = crate::saturating_relax(du, w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    stats.total_updates += 1;
                    if !in_next[v as usize] {
                        in_next[v as usize] = true;
                        next.push(v);
                    }
                }
            }
        }
        for &v in &next {
            in_next[v as usize] = false;
        }
        frontier = next;
    }
    stats.phase1_layers.push(rounds);
    SsspResult { source, dist, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra::dijkstra;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..5 {
            let mut el = erdos_renyi(80, 320, seed);
            uniform_weights(&mut el, seed + 100);
            let g = build_undirected(&el);
            let a = bellman_ford(&g, 0);
            let b = dijkstra(&g, 0);
            assert_eq!(a.dist, b.dist, "seed {seed}");
        }
    }

    #[test]
    fn does_more_work_than_dijkstra() {
        // On a graph with many alternative paths, Bellman-Ford's
        // update count exceeds Dijkstra's (the §3.3 motivation).
        let mut el = erdos_renyi(200, 2000, 7);
        uniform_weights(&mut el, 9);
        let g = build_undirected(&el);
        let bf = bellman_ford(&g, 0);
        let dj = dijkstra(&g, 0);
        assert!(bf.stats.total_updates >= dj.stats.total_updates);
        assert!(bf.work_ratio().unwrap() >= 1.0);
    }

    #[test]
    fn round_count_bounded_by_hops() {
        // A 6-vertex path: 5 propagation rounds plus the final round
        // in which frontier {5} improves nothing.
        let el = EdgeList::from_edges(6, (0..5).map(|i| (i, i + 1, 1)).collect());
        let g = build_undirected(&el);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.stats.phase1_layers, vec![6]);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn frontier_sizes_recorded() {
        let el = EdgeList::from_edges(4, vec![(0, 1, 1), (0, 2, 1), (1, 3, 1)]);
        let g = build_undirected(&el);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.stats.peak_bucket_layer_active[0], 1); // {0}
        assert_eq!(r.stats.peak_bucket_layer_active[1], 2); // {1,2}
    }
}
