//! Sequential reference implementations.
//!
//! * [`dijkstra()`] — the work-optimal oracle every other implementation
//!   is validated against (§2.1);
//! * [`bellman_ford()`] — round-synchronous push relaxation (§2.1), the
//!   conceptual model of the paper's BL baseline;
//! * [`delta_stepping()`] — the classic three-phase Δ-stepping of §2.2,
//!   fully instrumented to regenerate the paper's motivation figures
//!   (bucket occupancy — Fig. 2; phase-1 layers and valid/total
//!   updates — Fig. 3).

pub mod bellman_ford;
pub mod delta_stepping;
pub mod dial;
pub mod dijkstra;
pub(crate) mod wheel;

pub use bellman_ford::bellman_ford;
pub use delta_stepping::{delta_stepping, delta_stepping_traced, BucketTrace, DeltaSteppingRun};
pub use dial::dial;
pub use dijkstra::dijkstra;
