//! Oracle validation: compare any SSSP output against Dijkstra.

use crate::seq::dijkstra;
use crate::{Csr, Dist, VertexId, INF};

/// The first disagreement between a result and the oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mismatch {
    pub vertex: VertexId,
    pub expected: Dist,
    pub actual: Dist,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vertex {}: expected {}, got {}",
            self.vertex,
            fmt_dist(self.expected),
            fmt_dist(self.actual)
        )
    }
}

fn fmt_dist(d: Dist) -> String {
    if d == INF {
        "INF".into()
    } else {
        d.to_string()
    }
}

/// Compare `dist` against a fresh Dijkstra run from `source`.
pub fn check_against_dijkstra(
    graph: &Csr,
    source: VertexId,
    dist: &[Dist],
) -> Result<(), Mismatch> {
    let oracle = dijkstra(graph, source);
    check_against(&oracle.dist, dist)
}

/// Compare two distance arrays directly.
pub fn check_against(expected: &[Dist], actual: &[Dist]) -> Result<(), Mismatch> {
    assert_eq!(expected.len(), actual.len(), "length mismatch");
    for (v, (&e, &a)) in expected.iter().zip(actual).enumerate() {
        if e != a {
            return Err(Mismatch { vertex: v as VertexId, expected: e, actual: a });
        }
    }
    Ok(())
}

/// Check internal consistency without an oracle: `dist[source] == 0`,
/// every finite distance is realizable along some edge, and no edge is
/// left relaxable. A correct SSSP output always satisfies this.
pub fn check_relaxed(graph: &Csr, source: VertexId, dist: &[Dist]) -> Result<(), String> {
    if dist[source as usize] != 0 {
        return Err(format!("dist[source] = {}, expected 0", dist[source as usize]));
    }
    for (u, v, w) in graph.all_edges() {
        let (du, dv) = (dist[u as usize], dist[v as usize]);
        if du != INF && (dv == INF || dv as u64 > du as u64 + w as u64) {
            return Err(format!(
                "edge ({u} -> {v}, w {w}) still relaxable: dist[{u}]={}, dist[{v}]={}",
                fmt_dist(du),
                fmt_dist(dv)
            ));
        }
    }
    // Every reached non-source vertex must have a tight predecessor.
    let mut tight = vec![false; dist.len()];
    tight[source as usize] = true;
    for (u, v, w) in graph.all_edges() {
        if dist[u as usize] != INF
            && dist[v as usize] != INF
            && dist[u as usize] as u64 + w as u64 == dist[v as usize] as u64
        {
            tight[v as usize] = true;
        }
    }
    for (v, (&d, &t)) in dist.iter().zip(&tight).enumerate() {
        if d != INF && !t {
            return Err(format!("vertex {v} at distance {d} has no tight predecessor"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_graph::builder::{build_undirected, EdgeList};

    fn line() -> Csr {
        build_undirected(&EdgeList::from_edges(3, vec![(0, 1, 2), (1, 2, 3)]))
    }

    #[test]
    fn accepts_correct_result() {
        let g = line();
        assert!(check_against_dijkstra(&g, 0, &[0, 2, 5]).is_ok());
        assert!(check_relaxed(&g, 0, &[0, 2, 5]).is_ok());
    }

    #[test]
    fn rejects_wrong_distance() {
        let g = line();
        let err = check_against_dijkstra(&g, 0, &[0, 2, 6]).unwrap_err();
        assert_eq!(err.vertex, 2);
        assert_eq!(err.expected, 5);
        assert!(check_relaxed(&g, 0, &[0, 2, 6]).is_err());
    }

    #[test]
    fn relaxed_check_rejects_too_small() {
        // 4 < true distance but no tight predecessor.
        let g = line();
        assert!(check_relaxed(&g, 0, &[0, 2, 4]).is_err());
    }

    #[test]
    fn relaxed_check_rejects_unreached_reachable() {
        let g = line();
        assert!(check_relaxed(&g, 0, &[0, 2, INF]).is_err());
    }

    #[test]
    fn display_formats() {
        let m = Mismatch { vertex: 3, expected: INF, actual: 7 };
        assert_eq!(m.to_string(), "vertex 3: expected INF, got 7");
    }
}
