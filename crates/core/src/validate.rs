//! Oracle validation: compare any SSSP output against Dijkstra.

use crate::seq::dijkstra;
use crate::{Csr, Dist, VertexId, INF};

/// The first disagreement between a result and the oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mismatch {
    pub vertex: VertexId,
    pub expected: Dist,
    pub actual: Dist,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vertex {}: expected {}, got {}",
            self.vertex,
            fmt_dist(self.expected),
            fmt_dist(self.actual)
        )
    }
}

fn fmt_dist(d: Dist) -> String {
    if d == INF {
        "INF".into()
    } else {
        d.to_string()
    }
}

/// Compare `dist` against a fresh Dijkstra run from `source`.
pub fn check_against_dijkstra(
    graph: &Csr,
    source: VertexId,
    dist: &[Dist],
) -> Result<(), Mismatch> {
    let oracle = dijkstra(graph, source);
    check_against(&oracle.dist, dist)
}

/// Compare two distance arrays directly.
pub fn check_against(expected: &[Dist], actual: &[Dist]) -> Result<(), Mismatch> {
    assert_eq!(expected.len(), actual.len(), "length mismatch");
    for (v, (&e, &a)) in expected.iter().zip(actual).enumerate() {
        if e != a {
            return Err(Mismatch { vertex: v as VertexId, expected: e, actual: a });
        }
    }
    Ok(())
}

/// Check internal consistency without an oracle: `dist[source] == 0`,
/// every finite distance is realizable along some edge, and no edge is
/// left relaxable. A correct SSSP output always satisfies this.
pub fn check_relaxed(graph: &Csr, source: VertexId, dist: &[Dist]) -> Result<(), String> {
    if dist[source as usize] != 0 {
        return Err(format!("dist[source] = {}, expected 0", dist[source as usize]));
    }
    for (u, v, w) in graph.all_edges() {
        let (du, dv) = (dist[u as usize], dist[v as usize]);
        if du != INF && (dv == INF || dv as u64 > du as u64 + w as u64) {
            return Err(format!(
                "edge ({u} -> {v}, w {w}) still relaxable: dist[{u}]={}, dist[{v}]={}",
                fmt_dist(du),
                fmt_dist(dv)
            ));
        }
    }
    // Every reached non-source vertex must have a tight predecessor.
    let mut tight = vec![false; dist.len()];
    tight[source as usize] = true;
    for (u, v, w) in graph.all_edges() {
        if dist[u as usize] != INF
            && dist[v as usize] != INF
            && dist[u as usize] as u64 + w as u64 == dist[v as usize] as u64
        {
            tight[v as usize] = true;
        }
    }
    for (v, (&d, &t)) in dist.iter().zip(&tight).enumerate() {
        if d != INF && !t {
            return Err(format!("vertex {v} at distance {d} has no tight predecessor"));
        }
    }
    Ok(())
}

/// Everything the oracle-free audit found wrong with a distance array.
#[derive(Clone, Debug, Default)]
pub struct SsspAudit {
    /// Vertices whose distances are suspect, sorted and deduplicated —
    /// the seed set for a repair sweep.
    pub flagged: Vec<VertexId>,
    /// Human-readable findings (capped).
    pub notes: Vec<String>,
}

const NOTE_CAP: usize = 16;

impl SsspAudit {
    pub fn is_clean(&self) -> bool {
        self.flagged.is_empty() && self.notes.is_empty()
    }

    fn note(&mut self, msg: String) {
        if self.notes.len() < NOTE_CAP {
            self.notes.push(msg);
        }
    }
}

/// Oracle-free audit of an SSSP output, O(V+E): the checks of
/// [`check_relaxed`] plus a *certification pass* — every reached
/// vertex must be reachable from the source along tight edges
/// (`dist[v] == dist[u] + w`), which closes the hole where a
/// consistent-looking island of too-low distances certifies itself in
/// the per-vertex tight-predecessor check. (With zero-weight cycles a
/// mutually-tight island at exactly consistent wrong values can still
/// pass `check_relaxed`; the certification pass rejects it because no
/// tight path connects it to the source.)
///
/// Unlike [`check_relaxed`] this collects *all* suspect vertices, so a
/// recovery layer can seed a bounded repair from them.
pub fn audit_sssp(graph: &Csr, source: VertexId, dist: &[Dist]) -> SsspAudit {
    let mut audit = SsspAudit::default();
    if dist[source as usize] != 0 {
        audit.note(format!("dist[source] = {}, expected 0", dist[source as usize]));
        audit.flagged.push(source);
    }
    // Too-high side: any still-relaxable edge flags its head.
    for (u, v, w) in graph.all_edges() {
        let (du, dv) = (dist[u as usize], dist[v as usize]);
        if du != INF && (dv == INF || dv as u64 > du as u64 + w as u64) {
            audit.note(format!(
                "edge ({u} -> {v}, w {w}) still relaxable: dist[{u}]={}, dist[{v}]={}",
                fmt_dist(du),
                fmt_dist(dv)
            ));
            audit.flagged.push(v);
        }
    }
    // Too-low side: certify reached vertices by BFS over tight edges
    // from the source; anything reached but uncertified is corrupt (or
    // downstream of a corrupt value).
    let n = dist.len();
    let mut tight_adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for (u, v, w) in graph.all_edges() {
        let (du, dv) = (dist[u as usize], dist[v as usize]);
        if du != INF && dv != INF && du as u64 + w as u64 == dv as u64 {
            tight_adj[u as usize].push(v);
        }
    }
    let mut certified = vec![false; n];
    if dist[source as usize] == 0 {
        certified[source as usize] = true;
        let mut stack = vec![source];
        while let Some(u) = stack.pop() {
            for &v in &tight_adj[u as usize] {
                if !certified[v as usize] {
                    certified[v as usize] = true;
                    stack.push(v);
                }
            }
        }
    }
    for (v, (&d, &c)) in dist.iter().zip(&certified).enumerate() {
        if d != INF && !c {
            audit.note(format!("vertex {v} at distance {d} has no tight path from the source"));
            audit.flagged.push(v as VertexId);
        }
    }
    audit.flagged.sort_unstable();
    audit.flagged.dedup();
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_graph::builder::{build_undirected, EdgeList};

    fn line() -> Csr {
        build_undirected(&EdgeList::from_edges(3, vec![(0, 1, 2), (1, 2, 3)]))
    }

    #[test]
    fn accepts_correct_result() {
        let g = line();
        assert!(check_against_dijkstra(&g, 0, &[0, 2, 5]).is_ok());
        assert!(check_relaxed(&g, 0, &[0, 2, 5]).is_ok());
    }

    #[test]
    fn rejects_wrong_distance() {
        let g = line();
        let err = check_against_dijkstra(&g, 0, &[0, 2, 6]).unwrap_err();
        assert_eq!(err.vertex, 2);
        assert_eq!(err.expected, 5);
        assert!(check_relaxed(&g, 0, &[0, 2, 6]).is_err());
    }

    #[test]
    fn relaxed_check_rejects_too_small() {
        // 4 < true distance but no tight predecessor.
        let g = line();
        assert!(check_relaxed(&g, 0, &[0, 2, 4]).is_err());
    }

    #[test]
    fn relaxed_check_rejects_unreached_reachable() {
        let g = line();
        assert!(check_relaxed(&g, 0, &[0, 2, INF]).is_err());
    }

    #[test]
    fn audit_flags_both_directions() {
        let g = line();
        assert!(audit_sssp(&g, 0, &[0, 2, 5]).is_clean());
        // Too high at vertex 2: the (1,2) edge is relaxable.
        let high = audit_sssp(&g, 0, &[0, 2, 6]);
        assert!(high.flagged.contains(&2));
        // Too low at vertex 2: no tight path reaches it.
        let low = audit_sssp(&g, 0, &[0, 2, 4]);
        assert!(low.flagged.contains(&2));
        // Unreached-but-reachable is the INF-side of "too high".
        let unreached = audit_sssp(&g, 0, &[0, 2, INF]);
        assert!(unreached.flagged.contains(&2));
    }

    #[test]
    fn audit_rejects_self_certifying_zero_cycle() {
        // a <-> b with weight 0, true distance 5 via the source edge;
        // both claiming 3 passes check_relaxed's per-vertex test but
        // not the tight-path certification.
        let g = build_undirected(&EdgeList::from_edges(3, vec![(0, 1, 5), (1, 2, 0)]));
        assert!(check_relaxed(&g, 0, &[0, 3, 3]).is_ok(), "the hole audit_sssp closes");
        let audit = audit_sssp(&g, 0, &[0, 3, 3]);
        assert_eq!(audit.flagged, vec![1, 2]);
    }

    #[test]
    fn display_formats() {
        let m = Mismatch { vertex: 3, expected: INF, actual: 7 };
        assert_eq!(m.to_string(), "vertex 3: expected INF, got 7");
    }
}
