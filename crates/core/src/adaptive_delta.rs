//! Dynamic bucket-width adjustment — the paper's Eq. (1) and (2).
//!
//! ```text
//! ε_i = 0                                                 i ∈ {0, 1}
//! ε_i = |(C_{i-2} − C_{i-1}) / (C_{i-2} + C_{i-1})|
//!       · (T_{i-2} − T_{i-1}) / (T_{i-2} + T_{i-1}) · Δ_0   i ≥ 2
//! Δ_i = Δ_{i-1} + ε_i
//! ```
//!
//! `C_i` is the number of converged (settled) vertices of bucket `i`
//! and `T_i` the number of threads the bucket used — a proxy for GPU
//! utilization. The second factor is *signed*: rising utilization
//! (`T_{i-1} > T_{i-2}`) makes ε negative and narrows the bucket,
//! falling utilization widens it, exactly as §4.3 describes ("As the
//! utilization of GPU increases, we reduce Δᵢ value, otherwise we
//! increase Δᵢ value").

/// State of the Δ controller across buckets.
///
/// ```
/// use rdbs_core::adaptive_delta::DeltaController;
/// let mut ctrl = DeltaController::new(100);
/// assert_eq!(ctrl.delta(), 100);          // Δ₀
/// ctrl.finish_bucket(100, 1_000);         // bucket 0: ε₁ = 0
/// // Utilization jumped: Eq. 1 narrows the next bucket.
/// let d2 = ctrl.finish_bucket(400, 9_000);
/// assert!(d2 < 100);
/// ```
#[derive(Clone, Debug)]
pub struct DeltaController {
    delta0: f64,
    delta: f64,
    /// The last ≤ 2 `(C_i, T_i)` records — all Eq. (1) needs. Bounded
    /// so a long-lived service reusing one controller across queries
    /// cannot grow without bound.
    recent: Vec<(u64, u64)>,
    /// Full per-bucket records, kept only when the experiment harness
    /// opts in with [`DeltaController::with_full_history`].
    full: Option<Vec<(u64, u64)>>,
    /// Buckets completed in the current run (reset by
    /// [`DeltaController::start_run`]).
    completed: usize,
    /// Smallest width the controller will return.
    min_delta: f64,
    /// Largest width the controller will return (guards pathological
    /// feedback on tiny graphs).
    max_delta: f64,
    /// Lanes below which a bucket counts as under-utilizing the GPU
    /// (§4.3's utilization driver; 0 disables the rule).
    target_parallelism: u64,
}

impl DeltaController {
    /// New controller with initial width `delta0` (must be ≥ 1).
    pub fn new(delta0: u32) -> Self {
        let d0 = f64::from(delta0.max(1));
        Self {
            delta0: d0,
            delta: d0,
            recent: Vec::with_capacity(2),
            full: None,
            completed: 0,
            min_delta: 1.0,
            max_delta: d0 * 64.0,
            target_parallelism: 0,
        }
    }

    /// Opt in to retaining every `(C, T)` record for
    /// [`DeltaController::history`] (the experiment harness' per-bucket
    /// plots need the full series; long-lived services must not).
    pub fn with_full_history(mut self) -> Self {
        self.full = Some(Vec::new());
        self
    }

    /// Enable the utilization floor: a bucket that used fewer than
    /// `lanes` threads doubles Δ (still clamped). This implements the
    /// paper's stated driver — "as the utilization of GPU increases,
    /// we reduce Δᵢ value, otherwise we increase Δᵢ value" — for the
    /// regime Eq. 1's differential form cannot act on: long stretches
    /// of uniformly tiny buckets, where consecutive C/T barely differ
    /// so ε ≈ 0 although the GPU is idle.
    pub fn with_target_parallelism(mut self, lanes: u64) -> Self {
        self.target_parallelism = lanes;
        self
    }

    /// Current bucket width.
    pub fn delta(&self) -> u32 {
        self.delta.round().max(1.0) as u32
    }

    /// Buckets completed in the current run.
    pub fn buckets_completed(&self) -> usize {
        self.completed
    }

    /// Begin a new query on the same controller (the resident-service
    /// path). Δ restarts at Δ₀: Eq. 1 is a *within-run* differential
    /// controller, and the width it ends a run with is inflated by the
    /// utilization floor firing on the final near-empty buckets —
    /// carrying it into the next query starts that query in
    /// Bellman-Ford territory (measured ~1.5× slower per query).
    /// The C/T window and bucket count reset too, so ε is pinned to
    /// zero for the new run's first two buckets exactly as for a
    /// fresh controller.
    pub fn start_run(&mut self) {
        self.delta = self.delta0;
        self.recent.clear();
        self.completed = 0;
    }

    /// Record bucket `i`'s outcome (`converged` = C_i, `threads` =
    /// T_i) and compute Δ for the next bucket. Returns the new width.
    pub fn finish_bucket(&mut self, converged: u64, threads: u64) -> u32 {
        if self.recent.len() == 2 {
            self.recent.remove(0);
        }
        self.recent.push((converged, threads));
        if let Some(full) = &mut self.full {
            full.push((converged, threads));
        }
        self.completed += 1;
        if self.completed >= 2 {
            let (c2, t2) = self.recent[self.recent.len() - 2];
            let (c1, t1) = self.recent[self.recent.len() - 1];
            let eps = epsilon(c2, c1, t2, t1, self.delta0);
            self.delta = (self.delta + eps).clamp(self.min_delta, self.max_delta);
        }
        // Utilization floor (see `with_target_parallelism`).
        if self.target_parallelism > 0 && threads < self.target_parallelism {
            self.delta = (self.delta * 2.0).clamp(self.min_delta, self.max_delta);
        }
        self.delta()
    }

    /// The ε history is reconstructible from the C/T history; expose
    /// the raw records for the experiment harness. Without
    /// [`DeltaController::with_full_history`] only the last two records
    /// are retained (all the recurrence needs — the bounded default
    /// for long-lived services).
    pub fn history(&self) -> &[(u64, u64)] {
        self.full.as_deref().unwrap_or(&self.recent)
    }
}

/// Eq. (1) for bucket `i ≥ 2`, given `(C_{i-2}, C_{i-1}, T_{i-2},
/// T_{i-1})`. Returns 0 when a denominator vanishes.
pub fn epsilon(c_prev2: u64, c_prev1: u64, t_prev2: u64, t_prev1: u64, delta0: f64) -> f64 {
    let c_sum = c_prev2 + c_prev1;
    let t_sum = t_prev2 + t_prev1;
    if c_sum == 0 || t_sum == 0 {
        return 0.0;
    }
    let c_term = ((c_prev2 as f64 - c_prev1 as f64) / c_sum as f64).abs();
    let t_term = (t_prev2 as f64 - t_prev1 as f64) / t_sum as f64;
    c_term * t_term * delta0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_two_buckets_keep_delta0() {
        let mut c = DeltaController::new(100);
        assert_eq!(c.delta(), 100);
        // ε₀ and ε₁ are pinned to zero: Δ₁ = Δ₀.
        assert_eq!(c.finish_bucket(10, 50), 100);
        // After two completed buckets ε₂ applies:
        // |10−20|/30 · (50−80)/130 · 100 ≈ −7.7 → Δ₂ ≈ 92.
        let d2 = c.finish_bucket(20, 80);
        assert!(d2 < 100, "utilization rose, Δ must shrink (got {d2})");
        assert_eq!(d2, 92);
    }

    #[test]
    fn rising_utilization_shrinks_delta() {
        let mut c = DeltaController::new(100);
        c.finish_bucket(100, 100);
        let d = c.finish_bucket(300, 900); // utilization jumped
        assert!(d < 100, "delta {d}");
    }

    #[test]
    fn falling_utilization_grows_delta() {
        let mut c = DeltaController::new(100);
        c.finish_bucket(300, 900);
        let d = c.finish_bucket(100, 100);
        assert!(d > 100, "delta {d}");
    }

    #[test]
    fn equal_convergence_means_no_change() {
        // |C_{i-2} - C_{i-1}| = 0 → ε = 0.
        let mut c = DeltaController::new(50);
        c.finish_bucket(10, 100);
        assert_eq!(c.finish_bucket(10, 900), 50);
    }

    #[test]
    fn epsilon_zero_denominators() {
        assert_eq!(epsilon(0, 0, 5, 5, 100.0), 0.0);
        assert_eq!(epsilon(5, 5, 0, 0, 100.0), 0.0);
    }

    #[test]
    fn epsilon_magnitude_bounded_by_delta0() {
        let e = epsilon(1_000_000, 0, 1_000_000, 0, 100.0);
        assert!(e <= 100.0);
        let e = epsilon(0, 1_000_000, 0, 1_000_000, 100.0);
        assert!(e >= -100.0);
    }

    #[test]
    fn history_is_bounded_by_default() {
        let mut c = DeltaController::new(100);
        for i in 0..1000 {
            c.finish_bucket(i, i * 3 + 1);
        }
        assert_eq!(c.buckets_completed(), 1000);
        assert_eq!(c.history(), &[(998, 998 * 3 + 1), (999, 999 * 3 + 1)]);
    }

    #[test]
    fn full_history_behind_opt_in() {
        let mut c = DeltaController::new(100).with_full_history();
        for i in 0..10 {
            c.finish_bucket(i, i + 1);
        }
        assert_eq!(c.history().len(), 10);
        assert_eq!(c.history()[0], (0, 1));
    }

    #[test]
    fn bounded_recurrence_matches_unbounded() {
        // The recurrence only ever reads the last two records, so the
        // bounded window must produce the identical Δ sequence.
        let mut bounded = DeltaController::new(100);
        let mut full = DeltaController::new(100).with_full_history();
        for i in 0..50u64 {
            let (c_i, t_i) = (i * 7 % 13 + 1, i * 11 % 29 + 1);
            assert_eq!(bounded.finish_bucket(c_i, t_i), full.finish_bucket(c_i, t_i));
        }
    }

    #[test]
    fn start_run_restarts_at_delta0_and_resets_window() {
        let mut c = DeltaController::new(100);
        c.finish_bucket(300, 900);
        let inflated = c.finish_bucket(100, 100);
        assert!(inflated > 100, "falling utilization widened Δ");
        c.start_run();
        assert_eq!(c.buckets_completed(), 0);
        // The tail-inflated Δ does not leak into the next run, and the
        // first bucket of the new run applies no ε.
        assert_eq!(c.delta(), 100);
        assert_eq!(c.finish_bucket(1, 1_000_000), 100);
    }

    #[test]
    fn delta_never_below_one() {
        let mut c = DeltaController::new(1);
        for i in 0..20 {
            c.finish_bucket(
                if i % 2 == 0 { 1 } else { 1000 },
                if i % 2 == 0 { 1 } else { 100_000 },
            );
        }
        assert!(c.delta() >= 1);
    }
}
