//! Result analysis helpers used by the experiment harness: speedup
//! aggregation (the paper reports arithmetic-average speedups), bucket
//! trace CSV export for plotting, and GTEPS conversions.

use crate::gpu::GpuBucketTrace;
use crate::seq::BucketTrace;

/// Accumulates pairwise speedups and reports the aggregates the paper
/// quotes ("average speedup of 5.09× and 10.32×").
#[derive(Clone, Debug, Default)]
pub struct SpeedupSummary {
    ratios: Vec<f64>,
}

impl SpeedupSummary {
    /// Record one `baseline / ours` ratio (>1 means "ours" is faster).
    pub fn push(&mut self, baseline: f64, ours: f64) {
        assert!(baseline > 0.0 && ours > 0.0, "times must be positive");
        self.ratios.push(baseline / ours);
    }

    /// Number of recorded comparisons.
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// Arithmetic mean (the paper's convention).
    pub fn mean(&self) -> f64 {
        if self.ratios.is_empty() {
            return f64::NAN;
        }
        self.ratios.iter().sum::<f64>() / self.ratios.len() as f64
    }

    /// Geometric mean (the robust aggregate for ratio data).
    pub fn geomean(&self) -> f64 {
        if self.ratios.is_empty() {
            return f64::NAN;
        }
        (self.ratios.iter().map(|r| r.ln()).sum::<f64>() / self.ratios.len() as f64).exp()
    }

    /// Smallest and largest ratio ("ranges from A× to B×").
    pub fn min_max(&self) -> Option<(f64, f64)> {
        if self.ratios.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &r in &self.ratios {
            min = min.min(r);
            max = max.max(r);
        }
        Some((min, max))
    }

    /// How many comparisons "ours" won.
    pub fn wins(&self) -> usize {
        self.ratios.iter().filter(|&&r| r > 1.0).count()
    }
}

/// GTEPS (giga-traversed edges per second) from an edge count and
/// milliseconds — §5.1.3's metric.
pub fn gteps(edges: usize, ms: f64) -> f64 {
    if ms <= 0.0 {
        return 0.0;
    }
    edges as f64 / (ms * 1e-3) / 1e9
}

/// CSV of a GPU run's per-bucket trace (Fig. 2/3-style plotting input).
pub fn gpu_buckets_csv(buckets: &[GpuBucketTrace]) -> String {
    let mut out = String::from("bucket,lo,width,layers,active,converged,threads\n");
    for (i, b) in buckets.iter().enumerate() {
        out.push_str(&format!(
            "{i},{},{},{},{},{},{}\n",
            b.lo, b.width, b.layers, b.active, b.converged, b.threads
        ));
    }
    out
}

/// CSV of a sequential Δ-stepping trace.
pub fn seq_buckets_csv(buckets: &[BucketTrace]) -> String {
    let mut out = String::from("bucket,active,layers,phase1_updates,phase1_valid,phase2_updates\n");
    for b in buckets {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            b.bucket_id,
            b.active,
            b.layer_active.len(),
            b.phase1_updates,
            b.phase1_valid_updates,
            b.phase2_updates
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_aggregates() {
        let mut s = SpeedupSummary::default();
        s.push(10.0, 5.0); // 2x
        s.push(8.0, 1.0); // 8x
        s.push(1.0, 2.0); // 0.5x
        assert_eq!(s.len(), 3);
        assert!((s.mean() - (2.0 + 8.0 + 0.5) / 3.0).abs() < 1e-12);
        assert!((s.geomean() - 2.0f64).abs() < 1e-12); // (2*8*0.5)^(1/3)
        assert_eq!(s.min_max(), Some((0.5, 8.0)));
        assert_eq!(s.wins(), 2);
    }

    #[test]
    fn empty_summary() {
        let s = SpeedupSummary::default();
        assert!(s.is_empty());
        assert!(s.mean().is_nan());
        assert!(s.min_max().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_time() {
        let mut s = SpeedupSummary::default();
        s.push(0.0, 1.0);
    }

    #[test]
    fn gteps_conversion() {
        assert!((gteps(1_000_000_000, 1000.0) - 1.0).abs() < 1e-12);
        assert_eq!(gteps(100, 0.0), 0.0);
    }

    #[test]
    fn csv_shapes() {
        let buckets = vec![GpuBucketTrace {
            lo: 0,
            width: 100,
            layers: 3,
            active: 42,
            converged: 40,
            threads: 99,
        }];
        let csv = gpu_buckets_csv(&buckets);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1], "0,0,100,3,42,40,99");

        let seq = vec![BucketTrace {
            bucket_id: 2,
            active: 10,
            layer_active: vec![4, 6],
            phase1_updates: 9,
            phase1_valid_updates: 7,
            phase2_updates: 1,
        }];
        let csv = seq_buckets_csv(&seq);
        assert!(csv.lines().nth(1).unwrap().starts_with("2,10,2,9,7,1"));
    }
}
