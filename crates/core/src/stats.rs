//! Work-efficiency accounting (paper §3.3, Fig. 3, Fig. 9).
//!
//! * a **check** is a relaxation attempt (Alg. 1 line 2);
//! * an **update** is a successful improvement (the `atomicMin`
//!   actually lowered `dist[v]`);
//! * an update is **valid** if it wrote the vertex's *final* shortest
//!   distance. Because improvements strictly decrease the distance,
//!   exactly one update per reached vertex is valid — the last one —
//!   so `valid_updates == reached vertices - 1` (the source is never
//!   updated). The paper's Fig. 9 metric is `total / valid`.

use crate::{Dist, VertexId, INF};

/// Counters accumulated during one SSSP run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Relaxation attempts (checks).
    pub checks: u64,
    /// Successful improvements.
    pub total_updates: u64,
    /// Phase-1 scheduling layers/waves per bucket, in bucket order
    /// (Fig. 3's iteration counts).
    pub phase1_layers: Vec<u32>,
    /// Active vertices handled per bucket (Fig. 2's occupancy).
    pub bucket_active: Vec<u64>,
    /// Per-layer active-vertex counts for the bucket with peak
    /// occupancy (Fig. 3's series).
    pub peak_bucket_layer_active: Vec<u64>,
}

impl UpdateStats {
    /// Valid updates given the final distances: reached vertices
    /// excluding the source.
    pub fn valid_updates(dist: &[Dist]) -> u64 {
        dist.iter().filter(|&&d| d != INF).count().saturating_sub(1) as u64
    }

    /// Fig. 9's work-efficiency ratio (`total updates / valid
    /// updates`); `None` if nothing was reached.
    pub fn work_ratio(&self, dist: &[Dist]) -> Option<f64> {
        let valid = Self::valid_updates(dist);
        if valid == 0 {
            None
        } else {
            Some(self.total_updates as f64 / valid as f64)
        }
    }

    /// Number of buckets processed.
    pub fn buckets(&self) -> usize {
        self.bucket_active.len()
    }
}

/// The outcome of one SSSP run.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Source vertex the search started from.
    pub source: VertexId,
    /// Final distances, indexed by vertex id **in the caller's
    /// labelling** (implementations that reorder internally map back).
    pub dist: Vec<Dist>,
    /// Work-efficiency counters.
    pub stats: UpdateStats,
}

impl SsspResult {
    /// Vertices with a finite distance.
    pub fn reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != INF).count()
    }

    /// Fig. 9 ratio for this run.
    pub fn work_ratio(&self) -> Option<f64> {
        self.stats.work_ratio(&self.dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_updates_excludes_source_and_unreached() {
        let dist = vec![0, 5, INF, 7];
        assert_eq!(UpdateStats::valid_updates(&dist), 2);
    }

    #[test]
    fn work_ratio() {
        let stats = UpdateStats { total_updates: 6, ..Default::default() };
        let dist = vec![0, 1, 2, INF];
        assert_eq!(stats.work_ratio(&dist), Some(3.0));
        let lonely = vec![0, INF];
        assert_eq!(stats.work_ratio(&lonely), None);
    }

    #[test]
    fn reached_counts_source() {
        let r = SsspResult {
            source: 0,
            dist: vec![0, 3, INF],
            stats: UpdateStats::default(),
        };
        assert_eq!(r.reached(), 2);
    }
}
