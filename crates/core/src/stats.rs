//! Work-efficiency accounting (paper §3.3, Fig. 3, Fig. 9).
//!
//! * a **check** is a relaxation attempt (Alg. 1 line 2);
//! * an **update** is a successful improvement (the `atomicMin`
//!   actually lowered `dist[v]`);
//! * an update is **valid** if it wrote the vertex's *final* shortest
//!   distance. Because improvements strictly decrease the distance,
//!   exactly one update per reached vertex is valid — the last one —
//!   so `valid_updates == reached vertices - 1` (the source is never
//!   updated). The paper's Fig. 9 metric is `total / valid`.

use crate::{Dist, VertexId, INF};

/// Counters accumulated during one SSSP run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Relaxation attempts (checks).
    pub checks: u64,
    /// Successful improvements.
    pub total_updates: u64,
    /// Phase-1 scheduling layers/waves per bucket, in bucket order
    /// (Fig. 3's iteration counts).
    pub phase1_layers: Vec<u32>,
    /// Active vertices handled per bucket (Fig. 2's occupancy).
    pub bucket_active: Vec<u64>,
    /// Per-layer active-vertex counts for the bucket with peak
    /// occupancy (Fig. 3's series).
    pub peak_bucket_layer_active: Vec<u64>,
}

impl UpdateStats {
    /// Valid updates given the final distances: reached vertices
    /// excluding the source.
    pub fn valid_updates(dist: &[Dist]) -> u64 {
        dist.iter().filter(|&&d| d != INF).count().saturating_sub(1) as u64
    }

    /// Fig. 9's work-efficiency ratio (`total updates / valid
    /// updates`); `None` if nothing was reached.
    pub fn work_ratio(&self, dist: &[Dist]) -> Option<f64> {
        let valid = Self::valid_updates(dist);
        if valid == 0 {
            None
        } else {
            Some(self.total_updates as f64 / valid as f64)
        }
    }

    /// Number of buckets processed.
    pub fn buckets(&self) -> usize {
        self.bucket_active.len()
    }
}

/// The outcome of one SSSP run.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Source vertex the search started from.
    pub source: VertexId,
    /// Final distances, indexed by vertex id **in the caller's
    /// labelling** (implementations that reorder internally map back).
    pub dist: Vec<Dist>,
    /// Work-efficiency counters.
    pub stats: UpdateStats,
}

impl SsspResult {
    /// Vertices with a finite distance.
    pub fn reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != INF).count()
    }

    /// Fig. 9 ratio for this run.
    pub fn work_ratio(&self) -> Option<f64> {
        self.stats.work_ratio(&self.dist)
    }
}

/// Amortization accounting for a resident SSSP service
/// ([`crate::service`]): what the batch saved relative to one-shot
/// clients that re-upload and re-allocate per query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// Queries answered since service construction.
    pub queries: u64,
    /// Host→device uploads actually performed (once per graph
    /// generation; constant across queries).
    pub graph_uploads: u64,
    /// Uploads a one-shot client would have performed on top of ours
    /// (uploads-per-graph × follow-up queries on a resident graph).
    pub uploads_avoided: u64,
    /// Bytes served from the buffer pool's free lists instead of
    /// freshly allocated.
    pub bytes_recycled: u64,
    /// Fresh pool allocations.
    pub pool_allocs: u64,
    /// Pool acquisitions recycled from the free lists.
    pub pool_reuses: u64,
    /// Per-query host wall-clock times, milliseconds, in query order.
    pub per_query_ms: Vec<f64>,
    /// Queries recovered through the host fallback after a detected
    /// device error (e.g. a queue overflow) — never silently wrong.
    pub fallbacks: u64,
    /// Queue overflows recovered **on the device** by re-acquiring the
    /// query's queue set one size class larger and replaying — each
    /// size-class step counts once. Only overflows past the escalation
    /// ceiling reach [`BatchStats::fallbacks`].
    pub escalations: u64,
    /// Peak number of queries simultaneously in flight across the
    /// device's command streams (1 for purely sequential batches, 0
    /// before any query).
    pub inflight_peak: u64,
    /// Per-query *simulated device service* latencies, milliseconds,
    /// in completion order: dispatch → completion on the query's
    /// stream. Covers device-answered queries on the single-GPU
    /// backend (host fallbacks and the multi-GPU backend contribute
    /// nothing); includes escalation replays. When
    /// [`BatchStats::fallbacks`] > 0, `per_query_sim_ms.len()` is
    /// *smaller* than [`BatchStats::queries`] — the slowest queries
    /// are exactly the missing ones, so tail claims must use
    /// [`BatchStats::per_query_sojourn_ms`], which covers every query.
    pub per_query_sim_ms: Vec<f64>,
    /// Per-query *sojourn* latencies on the shared simulated wall
    /// timeline, milliseconds, in completion order: batch start (the
    /// query's arrival, for closed-loop batches) → completion,
    /// including time spent queued behind other queries. Unlike
    /// [`BatchStats::per_query_sim_ms`] this series also records
    /// ceiling-hit queries re-answered by the host fallback (their
    /// sojourn ends at the device attempt's death; the host recompute
    /// runs off the simulated timeline), so on the single-GPU backend
    /// `per_query_sojourn_ms.len() == queries`. The multi-GPU backend
    /// has no shared simulated clock and contributes nothing.
    pub per_query_sojourn_ms: Vec<f64>,
    /// Queries refused by the traffic tier's admission control with a
    /// typed rejection ([`crate::service::traffic`]) — never counted
    /// in [`BatchStats::queries`], never answered.
    pub shed: u64,
    /// Traffic-tier queries answered bit-identically from the
    /// `(generation, source)` answer cache without touching the device.
    pub cache_exact_hits: u64,
    /// Traffic-tier queries answered with a landmark triangle-inequality
    /// *upper bound*, explicitly flagged approximate.
    pub cache_approx_hits: u64,
    /// Simulated device time batches occupied, milliseconds,
    /// accumulated across [`crate::service::SsspService::batch`]
    /// calls. For a concurrent batch this is the stream *makespan* —
    /// the throughput number to compare against a sequential batch's
    /// sum.
    pub sim_batch_ms: f64,
}

impl BatchStats {
    /// Mean per-query wall time, ms; `None` before the first query.
    pub fn mean_query_ms(&self) -> Option<f64> {
        if self.per_query_ms.is_empty() {
            None
        } else {
            Some(self.per_query_ms.iter().sum::<f64>() / self.per_query_ms.len() as f64)
        }
    }

    /// Nearest-rank percentile (`p` in 0..=100) of the simulated
    /// per-query *service* latencies, ms; `None` before the first
    /// device-answered query. Host-fallback queries are absent from
    /// this series — see [`BatchStats::per_query_sim_ms`] — so tail
    /// percentiles here understate a batch containing fallbacks; use
    /// [`BatchStats::sojourn_percentile_ms`] for an honest tail.
    pub fn sim_latency_percentile_ms(&self, p: f64) -> Option<f64> {
        percentile(&self.per_query_sim_ms, p)
    }

    /// Nearest-rank percentile (`p` in 0..=100) of the per-query
    /// *sojourn* latencies, ms; `None` before the first query on a
    /// simulated-clock backend. Covers every query, including
    /// host-fallback recoveries.
    pub fn sojourn_percentile_ms(&self, p: f64) -> Option<f64> {
        percentile(&self.per_query_sojourn_ms, p)
    }
}

/// Nearest-rank percentile of an unsorted sample, `None` when empty.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

/// Relaxation tracing for the conformance localizer.
///
/// A thread-local event sink that instrumented kernels
/// ([`crate::seq::delta_stepping`], the simulated-GPU
/// [`crate::gpu::rdbs()`](fn@crate::gpu::rdbs), and the CPU kernels in
/// [`crate::cpu`]) record successful relaxations into. Disabled
/// (zero-cost beyond one thread-local flag check) unless
/// [`trace::start`] was called on the current thread, so production
/// runs never pay for it.
///
/// Arming is thread-local, but the event storage behind it is shared:
/// multi-threaded kernels call [`trace::shard`] on the host thread to
/// capture a [`TraceShard`] — a `Send + Sync` handle onto the same
/// buffer, stamped with the current bucket/phase/layer context — and
/// hand it to their workers. Worker events merge into the armed
/// thread's buffer, and [`trace::take`] orders the merged stream by
/// (bucket, phase, layer) so cross-thread interleavings localize the
/// same way single-threaded runs do. The conformance crate's
/// first-divergence localizer replays a failing implementation with
/// the sink armed and reports the first bucket/phase/edge whose
/// settled distance departs from the Dijkstra oracle.
pub mod trace {
    use crate::{Dist, VertexId};
    use parking_lot::Mutex;
    use std::cell::{Cell, RefCell};
    use std::sync::Arc;

    /// Which relaxation site recorded the event.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Phase {
        /// Phase-1 light-edge relaxation.
        Light,
        /// Phase-2 heavy-edge relaxation.
        Heavy,
    }

    impl std::fmt::Display for Phase {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Phase::Light => write!(f, "phase 1 (light)"),
                Phase::Heavy => write!(f, "phase 2 (heavy)"),
            }
        }
    }

    /// One successful relaxation (`dist[dst]` lowered to `new`).
    #[derive(Clone, Debug)]
    pub struct RelaxEvent {
        /// Low edge of the active bucket's distance window (the
        /// sequential kernel stores the bucket index here).
        pub bucket: u64,
        /// Relaxation site.
        pub phase: Phase,
        /// Phase-1 layer (0 during phase 2).
        pub layer: u32,
        /// Edge tail.
        pub src: VertexId,
        /// Edge head — the improved vertex.
        pub dst: VertexId,
        /// Distance before the write.
        pub old: Dist,
        /// Distance written.
        pub new: Dist,
    }

    /// The shared event store every shard of one armed run writes to.
    struct Shared {
        events: Vec<RelaxEvent>,
        cap: usize,
        dropped: u64,
    }

    impl Shared {
        fn push(&mut self, ev: RelaxEvent) {
            if self.events.len() >= self.cap {
                self.dropped += 1;
            } else {
                self.events.push(ev);
            }
        }
    }

    struct Sink {
        bucket: u64,
        phase: Phase,
        layer: u32,
        shared: Arc<Mutex<Shared>>,
    }

    /// A `Send + Sync` recording handle for worker threads, stamped
    /// with the bucket/phase/layer context current when it was
    /// captured (via [`shard`]) on the armed host thread.
    #[derive(Clone)]
    pub struct TraceShard {
        bucket: u64,
        phase: Phase,
        layer: u32,
        shared: Arc<Mutex<Shared>>,
    }

    impl TraceShard {
        /// Record one successful relaxation under the shard's context.
        pub fn record(&self, src: VertexId, dst: VertexId, old: Dist, new: Dist) {
            let (bucket, phase, layer) = (self.bucket, self.phase, self.layer);
            self.shared.lock().push(RelaxEvent { bucket, phase, layer, src, dst, old, new });
        }
    }

    thread_local! {
        static ARMED: Cell<bool> = const { Cell::new(false) };
        static SINK: RefCell<Option<Sink>> = const { RefCell::new(None) };
    }

    /// Arm the sink on this thread, keeping at most `cap` events.
    pub fn start(cap: usize) {
        SINK.with(|s| {
            *s.borrow_mut() = Some(Sink {
                bucket: 0,
                phase: Phase::Light,
                layer: 0,
                shared: Arc::new(Mutex::new(Shared { events: Vec::new(), cap, dropped: 0 })),
            });
        });
        ARMED.with(|a| a.set(true));
    }

    /// Is the sink armed on this thread? Kernels use this as the
    /// fast-path guard before assembling an event.
    #[inline(always)]
    pub fn armed() -> bool {
        ARMED.with(std::cell::Cell::get)
    }

    /// Label subsequent events with the current bucket/phase/layer
    /// (host-side code calls this once per wave, not per edge).
    pub fn set_context(bucket: u64, phase: Phase, layer: u32) {
        if !armed() {
            return;
        }
        SINK.with(|s| {
            if let Some(sink) = s.borrow_mut().as_mut() {
                sink.bucket = bucket;
                sink.phase = phase;
                sink.layer = layer;
            }
        });
    }

    /// Record one successful relaxation under the current context.
    pub fn record(src: VertexId, dst: VertexId, old: Dist, new: Dist) {
        if !armed() {
            return;
        }
        SINK.with(|s| {
            if let Some(sink) = s.borrow_mut().as_mut() {
                let (bucket, phase, layer) = (sink.bucket, sink.phase, sink.layer);
                sink.shared.lock().push(RelaxEvent { bucket, phase, layer, src, dst, old, new });
            }
        });
    }

    /// Capture a worker-thread recording handle under the current
    /// context, or `None` when the sink is disarmed (the cheap guard
    /// for multi-threaded kernels: capture once per wave on the host,
    /// skip all instrumentation when it comes back `None`).
    pub fn shard() -> Option<TraceShard> {
        if !armed() {
            return None;
        }
        SINK.with(|s| {
            s.borrow().as_ref().map(|sink| TraceShard {
                bucket: sink.bucket,
                phase: sink.phase,
                layer: sink.layer,
                shared: Arc::clone(&sink.shared),
            })
        })
    }

    /// Rewrite the `src`/`dst` ids of every buffered event (used by
    /// runners that execute on a relabelled graph to map events back
    /// to the caller's vertex ids before the sink is drained).
    pub fn remap_ids(f: impl Fn(VertexId) -> VertexId) {
        if !armed() {
            return;
        }
        SINK.with(|s| {
            if let Some(sink) = s.borrow_mut().as_mut() {
                for ev in &mut sink.shared.lock().events {
                    ev.src = f(ev.src);
                    ev.dst = f(ev.dst);
                }
            }
        });
    }

    /// Disarm and return the recorded events plus the overflow count.
    ///
    /// Events from worker shards interleave arbitrarily within one
    /// wave, so the merged stream is put in (bucket, phase, layer)
    /// order — a stable sort, which leaves already-ordered
    /// single-threaded streams untouched and gives the localizer a
    /// deterministic scan order across threads.
    pub fn take() -> (Vec<RelaxEvent>, u64) {
        ARMED.with(|a| a.set(false));
        SINK.with(|s| {
            s.borrow_mut()
                .take()
                .map(|sink| {
                    let mut shared = sink.shared.lock();
                    let mut events = std::mem::take(&mut shared.events);
                    events.sort_by_key(|e| (e.bucket, e.phase as u8, e.layer));
                    (events, shared.dropped)
                })
                .unwrap_or_default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_sink_records_in_context() {
        trace::start(2);
        assert!(trace::armed());
        trace::set_context(3, trace::Phase::Heavy, 0);
        trace::record(1, 2, INF, 10);
        trace::record(2, 4, 20, 15);
        trace::record(4, 5, 30, 25); // over cap → dropped
        let (events, dropped) = trace::take();
        assert!(!trace::armed());
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 1);
        assert_eq!(events[0].bucket, 3);
        assert_eq!(events[0].phase, trace::Phase::Heavy);
        assert_eq!(events[1].new, 15);
        // Disarmed: records are no-ops.
        trace::record(0, 1, 2, 1);
        assert_eq!(trace::take().0.len(), 0);
    }

    #[test]
    fn sharded_sink_merges_worker_events_in_context_order() {
        trace::start(1 << 10);
        // Host records a bucket-1 event before the workers' bucket-0
        // wave: take() must put the merged stream back in bucket order.
        trace::set_context(1, trace::Phase::Heavy, 0);
        trace::record(9, 10, 40, 35);
        trace::set_context(0, trace::Phase::Light, 2);
        let shard = trace::shard().expect("armed thread yields a shard");
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let shard = shard.clone();
                s.spawn(move || shard.record(t, t + 100, INF, t));
            }
        });
        let (events, dropped) = trace::take();
        assert_eq!(events.len(), 5);
        assert_eq!(dropped, 0);
        // The four worker events (bucket 0) sort before the host's
        // bucket-1 event, and carry the context the shard captured.
        for e in &events[..4] {
            assert_eq!((e.bucket, e.phase, e.layer), (0, trace::Phase::Light, 2));
        }
        assert_eq!(events[4].bucket, 1);
        assert_eq!(events[4].phase, trace::Phase::Heavy);
        // Disarmed threads get no shard.
        assert!(trace::shard().is_none());
    }

    #[test]
    fn valid_updates_excludes_source_and_unreached() {
        let dist = vec![0, 5, INF, 7];
        assert_eq!(UpdateStats::valid_updates(&dist), 2);
    }

    #[test]
    fn work_ratio() {
        let stats = UpdateStats { total_updates: 6, ..Default::default() };
        let dist = vec![0, 1, 2, INF];
        assert_eq!(stats.work_ratio(&dist), Some(3.0));
        let lonely = vec![0, INF];
        assert_eq!(stats.work_ratio(&lonely), None);
    }

    #[test]
    fn reached_counts_source() {
        let r = SsspResult { source: 0, dist: vec![0, 3, INF], stats: UpdateStats::default() };
        assert_eq!(r.reached(), 2);
    }
}
