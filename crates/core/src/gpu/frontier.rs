//! Pluggable device frontiers behind the RDBS driver.
//!
//! The driver ([`super::rdbs::RdbsDriver`]) is generic over how the
//! per-bucket worklists live on the device. Three implementations:
//!
//! * [`WorkloadQueues`] (`--frontier single`) — the original layout:
//!   one queue per ADWL workload class plus a bucket-membership queue,
//!   all capacity-`n`. Overflow is impossible fault-free (pending
//!   marks deduplicate enqueues); a detected overflow goes to the
//!   service's escalation ladder.
//! * [`WheelFrontier`] (`--frontier wheel`) — a bucket wheel:
//!   [`WHEEL_SLOTS`] rotating [`WorkloadQueues`] sets sharing one
//!   pending buffer. Phase 1 works the active slot; phase 3 collects
//!   into the next; `advance` rotates. Escalatable like `single`.
//! * [`MlmqFrontier`] (`--frontier mlmq`) — a multi-level multi-queue:
//!   [`MLMQ_LEVELS`] priority levels (current bucket, deferred) each
//!   fanned out into [`MLMQ_FANOUT`] sub-queues. A device push picks
//!   its sub-queue by a lane hash — spreading the tail-counter
//!   `atomicAdd`s that make a single hot queue serialize
//!   (`atomic_conflicts`) — and a full sub-queue **spills** the push
//!   into the next level instead of raising overflow: the entry is
//!   simply processed one bucket later. Because a spilled activation
//!   arrives with a distance *below* the then-current window, the
//!   driver relaxes its staleness check for spilling frontiers
//!   (processing a settled vertex re-relaxes idempotently) and will
//!   not finish while a deferred level still holds entries. Membership
//!   tracking needs no second queue — the drained entries of a level
//!   *are* the bucket's membership — so a publish costs one
//!   tail-bump + one store against `single`'s two-queue double push.
//!   MLMQ never escalates: only a genuine loss (a spill level
//!   overflowing too, or a faulted cursor) raises [`QueueOverflow`],
//!   and the service answers from the host oracle.

use super::buffers::{DeviceQueue, GraphBuffers, QueueOverflow};
use crate::workload::{classify, WorkloadClass};
use crate::{Csr, VertexId};
use rdbs_gpu_sim::{Buf, Device, GangScatter, Lane};

/// Rotating queue sets in the bucket wheel.
pub const WHEEL_SLOTS: usize = 4;
/// Priority levels of the MLMQ: the active bucket and one deferred
/// (spill) level. Two suffice — `advance` rotates, so a deferred
/// entry is drained at most two buckets after it spilled.
pub const MLMQ_LEVELS: usize = 2;
/// Sub-queues per MLMQ level (the per-stream fan-out the tail
/// counters are spread across).
pub const MLMQ_FANOUT: usize = 4;

/// Which frontier layout the RDBS driver runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FrontierKind {
    /// One workload-queue set (the original layout).
    #[default]
    Single,
    /// Rotating bucket wheel of workload-queue sets.
    Wheel,
    /// Multi-level multi-queue with overflow spilling.
    Mlmq,
}

impl FrontierKind {
    /// Every frontier implementation, in matrix order.
    pub const ALL: [FrontierKind; 3] =
        [FrontierKind::Single, FrontierKind::Wheel, FrontierKind::Mlmq];

    /// CLI name (`--frontier <name>`).
    pub fn name(self) -> &'static str {
        match self {
            FrontierKind::Single => "single",
            FrontierKind::Wheel => "wheel",
            FrontierKind::Mlmq => "mlmq",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Suffix appended to variant legend labels (empty for the
    /// default layout, so existing labels are unchanged).
    pub fn label_suffix(self) -> &'static str {
        match self {
            FrontierKind::Single => "",
            FrontierKind::Wheel => "+WHEEL",
            FrontierKind::Mlmq => "+MLMQ",
        }
    }
}

impl std::fmt::Display for FrontierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How device-side publishes reach the frontier queues.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ScatterMode {
    /// Warp-aggregated multisplit scatter ([`Lane::gang_push`]): the
    /// lanes of a warp publishing to one queue reserve a contiguous
    /// slot range with a single leader `atomicAdd` and land their
    /// payloads with coalesced reserved stores — one tail atomic per
    /// (warp × bucket) instead of two atomics per element.
    #[default]
    Multisplit,
    /// The pre-multisplit per-element path: every publish pays its own
    /// tail `atomicAdd` plus an `atomicExch` into the slot. Kept as
    /// the conformance oracle the aggregated path must match
    /// bit-for-bit.
    Scalar,
}

impl ScatterMode {
    /// Both modes, oracle-comparison order.
    pub const ALL: [ScatterMode; 2] = [ScatterMode::Multisplit, ScatterMode::Scalar];

    /// CLI name (`--scatter <name>`).
    pub fn name(self) -> &'static str {
        match self {
            ScatterMode::Multisplit => "multisplit",
            ScatterMode::Scalar => "scalar",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for ScatterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One phase-1 layer's host-side drain: per-class worklists plus the
/// vertices to add to the bucket's membership set.
pub(crate) struct DrainedLayer {
    pub(crate) lists: [Vec<VertexId>; WorkloadClass::COUNT],
    pub(crate) new_members: Vec<VertexId>,
}

/// Pending-mark dedup at the head of every device-side enqueue:
/// `true` means `v` is already queued and the publish must be
/// skipped. Scalar mode is the original unconditional
/// `atomicExch(pending[v], 1)`. Multisplit mode test-and-test-and-sets
/// — a volatile read first, the exchange only when the mark looks
/// clear. The decision is identical either way: the mark only goes
/// 0→1 between an enqueue and the host drain that clears it, so a
/// read of 1 is exactly the case where the exchange would have
/// returned 1, and a stale-looking 0 is re-checked by the exchange.
/// Most enqueue attempts hit an already-marked vertex, so the gate
/// converts the bulk of the dedup atomics into loads.
#[inline]
fn pending_is_set(lane: &mut Lane<'_>, scatter: ScatterMode, pending: Buf, v: VertexId) -> bool {
    if scatter == ScatterMode::Multisplit && lane.ld_volatile(pending, v) != 0 {
        return true;
    }
    lane.atomic_exch(pending, v, 1) != 0
}

/// Host-side light-degree (seeding, drain-time classification and
/// T_i accounting).
pub(crate) fn host_light_degree(graph: &Csr, v: VertexId) -> u32 {
    match graph.heavy_delta() {
        Some(d) => graph.light_degree(v, d),
        None => graph.degree(v),
    }
}

/// The host seam the RDBS driver drives a frontier through. Every
/// implementation is a `Copy` bundle of buffer handles so the driver
/// (and the kernel closures, via [`FrontierView`]) capture it by
/// value.
pub(crate) trait Frontier {
    fn kind(&self) -> FrontierKind;

    /// Whether a full queue routes pushes to a deferred level instead
    /// of raising overflow. Spilling frontiers get the relaxed
    /// staleness check and never enter the escalation ladder.
    fn can_spill(&self) -> bool {
        self.kind() == FrontierKind::Mlmq
    }

    /// Enqueue the source vertex (host-side, query start).
    fn seed(&self, device: &mut Device, graph: &Csr, source: VertexId);

    /// Drain one phase-1 layer of the active bucket.
    fn drain_layer(&self, device: &mut Device, graph: &Csr) -> DrainedLayer;

    /// Kernel-side view for phase-1/phase-2 enqueues (current bucket).
    fn relax_view(&self) -> FrontierView;

    /// Kernel-side view for phase-3 collection (next bucket).
    fn collect_view(&self) -> FrontierView;

    /// Queue whose data buffer backs phase 2's republished membership
    /// list (read charges and live-slot stores).
    fn membership_backing(&self) -> DeviceQueue;

    /// Whether entries deferred to a later bucket are still queued —
    /// the driver must not finish while this holds.
    fn has_deferred(&self, device: &Device) -> bool;

    /// Surface any sticky overflow raised since the last reset.
    fn check(&self, device: &Device) -> Result<(), QueueOverflow>;

    /// Rotate to the next bucket (no-op for the single layout).
    fn advance(&mut self);

    /// Reset every queue and the pending marks for a fresh query.
    fn reset(&self, device: &mut Device);
}

/// The original frontier: three ADWL workload lists plus the
/// bucket-membership queue and the pending dedup marks.
#[derive(Clone, Copy)]
pub(crate) struct WorkloadQueues {
    pub(crate) q: [DeviceQueue; WorkloadClass::COUNT],
    /// Every enqueued vertex is also recorded here: the union over a
    /// bucket is exactly the bucket's membership, which phase 2 needs
    /// — tracking it at enqueue time replaces a full vertex scan.
    pub(crate) members: DeviceQueue,
    pub(crate) pending: Buf,
    pub(crate) adwl: bool,
    pub(crate) scatter: ScatterMode,
}

impl WorkloadQueues {
    pub(crate) fn new(device: &mut Device, n: u32, adwl: bool, scatter: ScatterMode) -> Self {
        let pending = device.alloc("pending", n as usize);
        Self::with_pending(device, n, adwl, scatter, pending)
    }

    /// Build a set around a caller-owned pending buffer (wheel slots
    /// share one).
    pub(crate) fn with_pending(
        device: &mut Device,
        n: u32,
        adwl: bool,
        scatter: ScatterMode,
        pending: Buf,
    ) -> Self {
        let q = [
            DeviceQueue::new(device, "workload_small", n),
            DeviceQueue::new(device, "workload_medium", n),
            DeviceQueue::new(device, "workload_large", n),
        ];
        let members = DeviceQueue::new(device, "bucket_members", n);
        Self { q, members, pending, adwl, scatter }
    }

    /// The set's queues (workload lists then members), for overflow
    /// checks and pool release.
    pub(crate) fn queues(&self) -> impl Iterator<Item = &DeviceQueue> {
        self.q.iter().chain(std::iter::once(&self.members))
    }

    /// Device-side light-degree probe used for classification. Under
    /// PRO this is two row loads (the paper: "with property-driven
    /// reordering, we can quickly calculate the number of light
    /// edges"); without it the total degree serves as the proxy.
    #[inline]
    fn light_degree(lane: &mut Lane<'_>, gb: GraphBuffers, v: VertexId) -> u32 {
        let s = lane.ld(gb.row, v);
        let e = match gb.heavy {
            Some(h) => lane.ld(h, v),
            None => lane.ld(gb.row, v + 1),
        };
        e - s
    }

    /// Device-side enqueue with pending dedup and ADWL classification.
    #[inline]
    pub(crate) fn enqueue(&self, lane: &mut Lane<'_>, gb: GraphBuffers, v: VertexId) {
        if pending_is_set(lane, self.scatter, self.pending, v) {
            return; // already queued
        }
        self.publish(lane, gb, v);
    }

    /// Enqueue for callers that guarantee at most one attempt per
    /// vertex per wave (phase 3's per-vertex collect): the multisplit
    /// path then reads the pending mark instead of exchanging it and
    /// defers the set to a reserved store in the flush — the
    /// exchange's only job is arbitrating same-wave duplicates, and
    /// there are none. Decision-identical to [`Self::enqueue`]: the
    /// mark only transitions 0→1 between enqueue and host drain, and
    /// no other lane of this wave touches `v`.
    #[inline]
    pub(crate) fn enqueue_distinct(&self, lane: &mut Lane<'_>, gb: GraphBuffers, v: VertexId) {
        match self.scatter {
            ScatterMode::Scalar => self.enqueue(lane, gb, v),
            ScatterMode::Multisplit => {
                if lane.ld_volatile(self.pending, v) != 0 {
                    return; // deferred from an earlier wave
                }
                lane.gang_flag(self.pending, v, 1);
                self.publish(lane, gb, v);
            }
        }
    }

    /// The post-dedup publish: ADWL classification, then the scalar
    /// per-push or gang-aggregated scatter.
    #[inline]
    fn publish(&self, lane: &mut Lane<'_>, gb: GraphBuffers, v: VertexId) {
        let class = if self.adwl {
            classify(Self::light_degree(lane, gb, v))
        } else {
            WorkloadClass::Small
        };
        match self.scatter {
            ScatterMode::Scalar => {
                self.q[class.index()].push(lane, v);
                self.members.push(lane, v);
            }
            ScatterMode::Multisplit => {
                // The warp's publishers split by workload class (the
                // multisplit bucket key) and reserve one slot range
                // per (warp × class queue); the membership push
                // aggregates across every publisher of the warp.
                let class_q =
                    GangScatter { target: self.q[class.index()].scatter_target(), spill: None };
                lane.gang_push(&class_q, v);
                let members = GangScatter { target: self.members.scatter_target(), spill: None };
                lane.gang_push(&members, v);
            }
        }
    }

    fn seed_queues(&self, device: &mut Device, graph: &Csr, source: VertexId) {
        device.write_word(self.pending, source as usize, 1);
        let src_class = if self.adwl {
            classify(host_light_degree(graph, source))
        } else {
            WorkloadClass::Small
        };
        self.q[src_class.index()].host_push(device, source);
        self.members.host_push(device, source);
    }

    fn drain_set(&self, device: &mut Device) -> DrainedLayer {
        let new_members = self.members.drain(device);
        let lists = std::array::from_fn(|c| self.q[c].drain(device));
        DrainedLayer { lists, new_members }
    }

    fn check_set(&self, device: &Device) -> Result<(), QueueOverflow> {
        for q in self.queues() {
            q.check(device)?;
        }
        Ok(())
    }

    fn reset_queues(&self, device: &mut Device) {
        for q in self.queues() {
            q.reset(device);
        }
    }
}

impl Frontier for WorkloadQueues {
    fn kind(&self) -> FrontierKind {
        FrontierKind::Single
    }

    fn seed(&self, device: &mut Device, graph: &Csr, source: VertexId) {
        self.seed_queues(device, graph, source);
    }

    fn drain_layer(&self, device: &mut Device, _graph: &Csr) -> DrainedLayer {
        self.drain_set(device)
    }

    fn relax_view(&self) -> FrontierView {
        FrontierView::Workload(*self)
    }

    fn collect_view(&self) -> FrontierView {
        // Phase 3 collects into the same set phase 1 will drain next
        // bucket — the single layout has nowhere else to put it.
        FrontierView::Workload(*self)
    }

    fn membership_backing(&self) -> DeviceQueue {
        self.members
    }

    fn has_deferred(&self, _device: &Device) -> bool {
        false // a full queue raises overflow instead of deferring
    }

    fn check(&self, device: &Device) -> Result<(), QueueOverflow> {
        self.check_set(device)
    }

    fn advance(&mut self) {}

    fn reset(&self, device: &mut Device) {
        self.reset_queues(device);
        device.fill(self.pending, 0);
    }
}

/// A bucket wheel: [`WHEEL_SLOTS`] rotating [`WorkloadQueues`] sets
/// over one shared pending buffer. Bucket ordinal `i` works slot
/// `i % WHEEL_SLOTS`; phase 3 collects into the next slot, so the
/// collect-side enqueues never interleave with the drains of the slot
/// phase 1 is still working.
#[derive(Clone, Copy)]
pub(crate) struct WheelFrontier {
    pub(crate) slots: [WorkloadQueues; WHEEL_SLOTS],
    pub(crate) pending: Buf,
    pub(crate) active: usize,
}

impl WheelFrontier {
    pub(crate) fn new(device: &mut Device, n: u32, adwl: bool, scatter: ScatterMode) -> Self {
        let pending = device.alloc("pending", n as usize);
        let slots = std::array::from_fn(|_| {
            WorkloadQueues::with_pending(device, n, adwl, scatter, pending)
        });
        Self { slots, pending, active: 0 }
    }

    fn slot(&self) -> &WorkloadQueues {
        &self.slots[self.active]
    }
}

impl Frontier for WheelFrontier {
    fn kind(&self) -> FrontierKind {
        FrontierKind::Wheel
    }

    fn seed(&self, device: &mut Device, graph: &Csr, source: VertexId) {
        self.slot().seed_queues(device, graph, source);
    }

    fn drain_layer(&self, device: &mut Device, _graph: &Csr) -> DrainedLayer {
        self.slot().drain_set(device)
    }

    fn relax_view(&self) -> FrontierView {
        FrontierView::Workload(*self.slot())
    }

    fn collect_view(&self) -> FrontierView {
        FrontierView::Workload(self.slots[(self.active + 1) % WHEEL_SLOTS])
    }

    fn membership_backing(&self) -> DeviceQueue {
        self.slot().members
    }

    fn has_deferred(&self, _device: &Device) -> bool {
        false // slots never hold work beyond the next rotation
    }

    fn check(&self, device: &Device) -> Result<(), QueueOverflow> {
        for slot in &self.slots {
            slot.check_set(device)?;
        }
        Ok(())
    }

    fn advance(&mut self) {
        self.active = (self.active + 1) % WHEEL_SLOTS;
    }

    fn reset(&self, device: &mut Device) {
        for slot in &self.slots {
            slot.reset_queues(device);
        }
        device.fill(self.pending, 0);
    }
}

/// The multi-level multi-queue — see the module docs for the push
/// routing and spill semantics.
#[derive(Clone, Copy)]
pub(crate) struct MlmqFrontier {
    /// `levels[l][s]`: sub-queue `s` of priority level `l`.
    pub(crate) levels: [[DeviceQueue; MLMQ_FANOUT]; MLMQ_LEVELS],
    pub(crate) pending: Buf,
    pub(crate) adwl: bool,
    pub(crate) scatter: ScatterMode,
    /// Level holding the active bucket's entries (rotates per bucket).
    pub(crate) active: usize,
}

impl MlmqFrontier {
    /// Per-sub-queue capacity for a frontier provisioned at `cap`
    /// total slots: 2×-overprovisioned against a perfectly uniform
    /// hash so moderate skew stays in-level, while a genuinely hot
    /// sub-queue spills instead of erroring.
    pub(crate) fn sub_capacity(cap: u32) -> u32 {
        ((cap as usize * 2).div_ceil(MLMQ_FANOUT)).max(1) as u32
    }

    pub(crate) fn new(device: &mut Device, n: u32, adwl: bool, scatter: ScatterMode) -> Self {
        let pending = device.alloc("pending", n as usize);
        let sub = Self::sub_capacity(n);
        let levels = std::array::from_fn(|_| {
            std::array::from_fn(|_| {
                // Every sub-queue can be a `try_push` target whose
                // overshoot spills to the next level, so all of them
                // are spill-class for the static push-bound certifier.
                let q = DeviceQueue::new(device, "mlmq_lane", sub);
                q.declare_spill(device);
                q
            })
        });
        Self { levels, pending, adwl, scatter, active: 0 }
    }

    /// Every sub-queue of every level, for checks and pool release.
    pub(crate) fn queues(&self) -> impl Iterator<Item = &DeviceQueue> {
        self.levels.iter().flatten()
    }

    /// Device-side enqueue: pending dedup, lane-hashed sub-queue
    /// pick, `try_push` into `target`'s level — and on a full
    /// sub-queue, a plain `push` into the *next* level (the spill).
    /// Only the spill level's drop path can raise overflow: that is
    /// real loss, reported by [`MlmqFrontier::check`].
    #[inline]
    fn enqueue(&self, lane: &mut Lane<'_>, target: usize, v: VertexId) {
        if pending_is_set(lane, self.scatter, self.pending, v) {
            return; // already queued
        }
        self.publish(lane, target, v);
    }

    /// Enqueue for at-most-once-per-vertex waves (phase 3 collect):
    /// see [`WorkloadQueues::enqueue_distinct`]. The load-only gate
    /// still skips vertices deferred in a spill level from an earlier
    /// wave — their mark is already 1.
    #[inline]
    fn enqueue_distinct(&self, lane: &mut Lane<'_>, target: usize, v: VertexId) {
        match self.scatter {
            ScatterMode::Scalar => self.enqueue(lane, target, v),
            ScatterMode::Multisplit => {
                if lane.ld_volatile(self.pending, v) != 0 {
                    return; // deferred from an earlier wave
                }
                lane.gang_flag(self.pending, v, 1);
                self.publish(lane, target, v);
            }
        }
    }

    /// The post-dedup publish: sub-queue pick, then the scalar
    /// try-push/spill pair or one aggregated reservation.
    #[inline]
    fn publish(&self, lane: &mut Lane<'_>, target: usize, v: VertexId) {
        // Fibonacci-hash the *physical* lane id (`tid` alone is the
        // work-item index, shared by every rank of a gang) so dense
        // lanes spread across the fan-out — the whole point:
        // concurrent publishers hit *different* tail counters instead
        // of serializing on one.
        lane.alu(2);
        let lane_id = lane.phys_id() as u32;
        let sub = (lane_id.wrapping_mul(0x9E37_79B9) >> 16) as usize % MLMQ_FANOUT;
        match self.scatter {
            ScatterMode::Scalar => {
                if !self.levels[target][sub].try_push(lane, v) {
                    self.levels[(target + 1) % MLMQ_LEVELS][sub].push(lane, v);
                }
            }
            ScatterMode::Multisplit => {
                // Aggregated equivalent of the try_push/push pair: the
                // warp's publishers to this sub-queue reserve one slot
                // range, and any overshoot re-reserves a single range
                // on the next level's sub-queue — the spill no longer
                // pays one atomic per spilled element.
                let gs = GangScatter {
                    target: self.levels[target][sub].scatter_target(),
                    spill: Some(self.levels[(target + 1) % MLMQ_LEVELS][sub].scatter_target()),
                };
                lane.gang_push(&gs, v);
            }
        }
    }
}

impl Frontier for MlmqFrontier {
    fn kind(&self) -> FrontierKind {
        FrontierKind::Mlmq
    }

    fn seed(&self, device: &mut Device, _graph: &Csr, source: VertexId) {
        device.write_word(self.pending, source as usize, 1);
        self.levels[self.active][0].host_push(device, source);
    }

    /// Drain the active level's sub-queues and classify host-side:
    /// the MLMQ routes pushes by lane, not by workload class, so the
    /// ADWL split happens at drain time (the manager thread already
    /// walks the entries). Tail overshoot on a sub-queue is the spill
    /// signal, not corruption — those pushes landed one level over.
    fn drain_layer(&self, device: &mut Device, graph: &Csr) -> DrainedLayer {
        let mut new_members = Vec::new();
        for sub in &self.levels[self.active] {
            let (items, _spilled) = sub.drain_lossy(device);
            new_members.extend(items);
        }
        let mut lists: [Vec<VertexId>; WorkloadClass::COUNT] = Default::default();
        for &v in &new_members {
            let class = if self.adwl {
                classify(host_light_degree(graph, v))
            } else {
                WorkloadClass::Small
            };
            lists[class.index()].push(v);
        }
        DrainedLayer { lists, new_members }
    }

    fn relax_view(&self) -> FrontierView {
        FrontierView::Mlmq { frontier: *self, target: self.active }
    }

    fn collect_view(&self) -> FrontierView {
        FrontierView::Mlmq { frontier: *self, target: (self.active + 1) % MLMQ_LEVELS }
    }

    fn membership_backing(&self) -> DeviceQueue {
        // Phase 2 republishes the deduplicated membership into this
        // data buffer (modulo its capacity) after the level's drains
        // emptied it, and before phase 3 pushes anything new.
        self.levels[self.active][0]
    }

    fn has_deferred(&self, device: &Device) -> bool {
        self.queues().any(|q| !q.is_empty(device))
    }

    fn check(&self, device: &Device) -> Result<(), QueueOverflow> {
        for q in self.queues() {
            q.check(device)?;
        }
        Ok(())
    }

    fn advance(&mut self) {
        self.active = (self.active + 1) % MLMQ_LEVELS;
    }

    fn reset(&self, device: &mut Device) {
        // The phase kernels charge the lane buffers as rings
        // (`slot % capacity`), so every word must be defined before
        // the first charge — the worklist-allocation memset.
        for q in self.queues() {
            q.reset(device);
            device.fill(q.data, 0);
        }
        device.fill(self.pending, 0);
    }
}

/// Static dispatch over the frontier implementations — the driver and
/// the service scratch hold this by value (`Copy`, like the buffer
/// bundles kernels capture).
// The wheel variant is a few hundred bytes of queue handles; boxing it
// would break the by-value `Copy` capture the kernel closures rely on.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy)]
pub(crate) enum AnyFrontier {
    Single(WorkloadQueues),
    Wheel(WheelFrontier),
    Mlmq(MlmqFrontier),
}

impl AnyFrontier {
    /// Allocate a fresh frontier of `kind` (the one-shot entry path;
    /// the service assembles pooled frontiers field by field).
    pub(crate) fn new(
        device: &mut Device,
        n: u32,
        adwl: bool,
        kind: FrontierKind,
        scatter: ScatterMode,
    ) -> Self {
        match kind {
            FrontierKind::Single => {
                AnyFrontier::Single(WorkloadQueues::new(device, n, adwl, scatter))
            }
            FrontierKind::Wheel => AnyFrontier::Wheel(WheelFrontier::new(device, n, adwl, scatter)),
            FrontierKind::Mlmq => AnyFrontier::Mlmq(MlmqFrontier::new(device, n, adwl, scatter)),
        }
    }

    /// Every device queue of the frontier (pool release, poisoning
    /// tests).
    pub(crate) fn device_queues(&self) -> Vec<DeviceQueue> {
        match self {
            AnyFrontier::Single(wq) => wq.queues().copied().collect(),
            AnyFrontier::Wheel(w) => {
                w.slots.iter().flat_map(WorkloadQueues::queues).copied().collect()
            }
            AnyFrontier::Mlmq(m) => m.queues().copied().collect(),
        }
    }

    /// The (single, possibly shared) pending-marks buffer.
    pub(crate) fn pending(&self) -> Buf {
        match self {
            AnyFrontier::Single(wq) => wq.pending,
            AnyFrontier::Wheel(w) => w.pending,
            AnyFrontier::Mlmq(m) => m.pending,
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $f:ident $(, $arg:expr)*) => {
        match $self {
            AnyFrontier::Single(x) => x.$f($($arg),*),
            AnyFrontier::Wheel(x) => x.$f($($arg),*),
            AnyFrontier::Mlmq(x) => x.$f($($arg),*),
        }
    };
}

impl Frontier for AnyFrontier {
    fn kind(&self) -> FrontierKind {
        dispatch!(self, kind)
    }

    fn can_spill(&self) -> bool {
        dispatch!(self, can_spill)
    }

    fn seed(&self, device: &mut Device, graph: &Csr, source: VertexId) {
        dispatch!(self, seed, device, graph, source);
    }

    fn drain_layer(&self, device: &mut Device, graph: &Csr) -> DrainedLayer {
        dispatch!(self, drain_layer, device, graph)
    }

    fn relax_view(&self) -> FrontierView {
        dispatch!(self, relax_view)
    }

    fn collect_view(&self) -> FrontierView {
        dispatch!(self, collect_view)
    }

    fn membership_backing(&self) -> DeviceQueue {
        dispatch!(self, membership_backing)
    }

    fn has_deferred(&self, device: &Device) -> bool {
        dispatch!(self, has_deferred, device)
    }

    fn check(&self, device: &Device) -> Result<(), QueueOverflow> {
        dispatch!(self, check, device)
    }

    fn advance(&mut self) {
        dispatch!(self, advance);
    }

    fn reset(&self, device: &mut Device) {
        dispatch!(self, reset, device);
    }
}

/// The kernel-side face of a frontier: a `Copy` capture for wave and
/// child-kernel closures, resolved by the host to a concrete enqueue
/// target (the wheel's active slot, the MLMQ's level) before launch.
#[derive(Clone, Copy)]
pub(crate) enum FrontierView {
    /// A workload-queue set (single layout, or one wheel slot).
    Workload(WorkloadQueues),
    /// The MLMQ with the level this wave's enqueues land in.
    Mlmq { frontier: MlmqFrontier, target: usize },
}

impl FrontierView {
    /// The scatter mode the backing frontier was built with — the
    /// kernels branch on this to pick the scalar or warp-synchronous
    /// publish sequence.
    #[inline]
    pub(crate) fn scatter(&self) -> ScatterMode {
        match *self {
            FrontierView::Workload(wq) => wq.scatter,
            FrontierView::Mlmq { frontier, .. } => frontier.scatter,
        }
    }

    /// Device-side publish of an improved in-window vertex.
    #[inline]
    pub(crate) fn enqueue(&self, lane: &mut Lane<'_>, gb: GraphBuffers, v: VertexId) {
        match *self {
            FrontierView::Workload(wq) => wq.enqueue(lane, gb, v),
            FrontierView::Mlmq { frontier, target } => frontier.enqueue(lane, target, v),
        }
    }

    /// Publish from a wave that attempts each vertex at most once
    /// (phase 3's per-vertex collect): the multisplit dedup then
    /// needs no exchange — a volatile read gates, and the mark is set
    /// by a reserved store in the flush.
    #[inline]
    pub(crate) fn enqueue_distinct(&self, lane: &mut Lane<'_>, gb: GraphBuffers, v: VertexId) {
        match *self {
            FrontierView::Workload(wq) => wq.enqueue_distinct(lane, gb, v),
            FrontierView::Mlmq { frontier, target } => frontier.enqueue_distinct(lane, target, v),
        }
    }

    /// Device-side test-and-clear of a dequeued vertex's pending
    /// mark. Atomic: races the enqueue-side `atomic_exch(pending, 1)`
    /// of concurrent improvers — a plain store could be lost and
    /// strand a re-activation. The volatile load gates the exchange
    /// so that when every lane of a gang issues the clear (the
    /// schedule-universal dequeue protocol, see `run_phase1_list`),
    /// only the first lane to run pays an atomic — the canonical
    /// count stays one exchange per activation.
    #[inline]
    pub(crate) fn clear_pending(&self, lane: &mut Lane<'_>, v: VertexId) {
        let pending = match *self {
            FrontierView::Workload(wq) => wq.pending,
            FrontierView::Mlmq { frontier, .. } => frontier.pending,
        };
        if lane.ld_volatile(pending, v) != 0 {
            lane.atomic_exch(pending, v, 0);
        }
    }

    /// Charge the fetch of work item `i` of `class` against the queue
    /// buffer that held it.
    #[inline]
    pub(crate) fn charge_slot(&self, lane: &mut Lane<'_>, class: usize, i: u32) {
        match *self {
            FrontierView::Workload(wq) => {
                let _ = wq.q[class].read_slot(lane, i);
            }
            FrontierView::Mlmq { frontier, target } => {
                // Host-side classing concatenated the sub-queues; the
                // modulo keeps the charge inside one sub-queue buffer.
                let q = frontier.levels[target][class % MLMQ_FANOUT];
                let _ = q.read_slot(lane, i % q.capacity);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_gpu_sim::DeviceConfig;

    #[test]
    fn kind_names_round_trip() {
        for kind in FrontierKind::ALL {
            assert_eq!(FrontierKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(FrontierKind::parse("bogus"), None);
        assert_eq!(FrontierKind::default(), FrontierKind::Single);
        assert_eq!(FrontierKind::Single.label_suffix(), "");
    }

    #[test]
    fn mlmq_spills_to_the_next_level_instead_of_overflowing() {
        // Push far more distinct vertices than one level holds: the
        // overflow must land in the deferred level, check() stays Ok,
        // and has_deferred reports the spill until it is drained.
        let mut d = Device::new(DeviceConfig::test_tiny());
        let n = 64u32;
        let mut f = MlmqFrontier::new(&mut d, n, false, ScatterMode::Multisplit);
        // Shrink the active level so the storm must spill.
        for q in &mut f.levels[0] {
            q.capacity = 2;
        }
        let view = FrontierView::Mlmq { frontier: f, target: 0 };
        d.launch("storm", n as u64, move |lane| {
            let v = lane.tid() as u32;
            // Exercise the enqueue path directly (no graph reads —
            // adwl is off, so classification never touches gb).
            match view {
                FrontierView::Mlmq { frontier, target } => frontier.enqueue(lane, target, v),
                FrontierView::Workload(_) => unreachable!(),
            }
        });
        assert!(f.check(&d).is_ok(), "spilled pushes are not overflow");
        assert!(f.has_deferred(&d));
        let g = crate::Csr::from_raw(vec![0; n as usize + 1], vec![], vec![]);
        let active: usize = f.drain_layer(&mut d, &g).new_members.len();
        f.advance();
        let deferred: usize = f.drain_layer(&mut d, &g).new_members.len();
        assert_eq!(active + deferred, n as usize, "no push lost");
        assert!(active <= 2 * MLMQ_FANOUT, "active level was capacity-capped");
        assert!(deferred >= n as usize - 2 * MLMQ_FANOUT);
        assert!(!f.has_deferred(&d));
    }

    #[test]
    fn mlmq_spill_of_spill_is_real_loss() {
        // Both levels rigged tiny: the spill level's drop path must
        // raise the sticky overflow so the host never trusts the run.
        let mut d = Device::new(DeviceConfig::test_tiny());
        let n = 64u32;
        let mut f = MlmqFrontier::new(&mut d, n, false, ScatterMode::Multisplit);
        for level in &mut f.levels {
            for q in level {
                q.capacity = 1;
            }
        }
        d.launch("storm", n as u64, move |lane| {
            let v = lane.tid() as u32;
            f.enqueue(lane, 0, v);
        });
        assert!(f.check(&d).is_err(), "a full spill level is a detected loss");
    }

    #[test]
    fn mlmq_pending_dedup_spans_levels() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let f = MlmqFrontier::new(&mut d, 16, false, ScatterMode::Multisplit);
        d.launch("dupes", 32, move |lane| {
            f.enqueue(lane, 0, 7); // every lane publishes the same vertex
        });
        let g = crate::Csr::from_raw(vec![0; 17], vec![], vec![]);
        let layer = f.drain_layer(&mut d, &g);
        assert_eq!(layer.new_members, vec![7], "pending marks deduplicate across the fan-out");
    }

    /// Empty graph buffers for enqueue-path tests (adwl off, so the
    /// classification never reads them).
    fn empty_gb(d: &mut Device, n: u32) -> GraphBuffers {
        let g = crate::Csr::from_raw(vec![0; n as usize + 1], vec![], vec![]);
        GraphBuffers::upload(d, &g)
    }

    use super::super::buffers::GraphBuffers;

    #[test]
    fn gang_reservation_landing_exactly_at_capacity_stays_clean() {
        // A full warp publishing exactly `capacity` distinct vertices:
        // the aggregated reservation's base+k must land *on* the
        // boundary without tripping the overflow bump, exactly like 32
        // scalar pushes — and drain the same membership.
        for scatter in ScatterMode::ALL {
            let mut d = Device::new(DeviceConfig::test_tiny());
            let f = WorkloadQueues::new(&mut d, 32, false, scatter);
            let gb = empty_gb(&mut d, 32);
            d.launch("fill", 32, move |lane| {
                let v = lane.tid() as u32;
                f.enqueue(lane, gb, v);
            });
            assert!(f.check(&d).is_ok(), "{scatter}: at-capacity fill must stay clean");
            assert_eq!(f.members.len(&d), 32, "{scatter}: tail must land exactly on capacity");
            let layer = f.drain_set(&mut d);
            assert_eq!(layer.new_members, (0..32).collect::<Vec<_>>(), "{scatter}");
        }
    }

    #[test]
    fn gang_reservation_one_short_of_capacity_overflows_like_scalar() {
        // Capacity 31, a full warp of 32 publishers: the warp's single
        // reservation overshoots by one. The sticky overflow must
        // carry the same (queue, capacity, attempted) evidence the
        // scalar path's 32nd push records.
        let mut errors = Vec::new();
        for scatter in ScatterMode::ALL {
            let mut d = Device::new(DeviceConfig::test_tiny());
            let mut f = WorkloadQueues::new(&mut d, 32, false, scatter);
            f.q[0].capacity = 31;
            f.members.capacity = 31;
            let gb = empty_gb(&mut d, 32);
            d.launch("storm", 32, move |lane| {
                let v = lane.tid() as u32;
                f.enqueue(lane, gb, v);
            });
            let err = f.check(&d).expect_err("one push past capacity must raise overflow");
            errors.push((err.queue, err.capacity, err.attempted));
        }
        assert_eq!(errors[0], errors[1], "multisplit and scalar overflow evidence must agree");
    }

    #[test]
    fn mlmq_gang_reservation_boundary_spills_like_scalar() {
        // Sub-queues sized so the warp's aggregated reservations
        // straddle the boundary: the overshoot must spill to the next
        // level in exactly the scalar try_push/push split — same
        // active-level membership, same deferred membership, no
        // sticky overflow in either mode.
        let mut observed = Vec::new();
        for scatter in ScatterMode::ALL {
            let mut d = Device::new(DeviceConfig::test_tiny());
            let mut f = MlmqFrontier::new(&mut d, 64, false, scatter);
            for q in &mut f.levels[0] {
                q.capacity = 3;
            }
            d.launch("storm", 64, move |lane| {
                let v = lane.tid() as u32;
                f.enqueue(lane, 0, v);
            });
            assert!(f.check(&d).is_ok(), "{scatter}: a spilled boundary is not overflow");
            assert!(f.has_deferred(&d), "{scatter}: the overshoot must be deferred");
            let g = crate::Csr::from_raw(vec![0; 65], vec![], vec![]);
            let mut active = f.drain_layer(&mut d, &g).new_members;
            f.advance();
            let mut deferred = f.drain_layer(&mut d, &g).new_members;
            active.sort_unstable();
            deferred.sort_unstable();
            assert_eq!(active.len() + deferred.len(), 64, "{scatter}: no push lost");
            observed.push((active, deferred));
        }
        assert_eq!(observed[0], observed[1], "multisplit and scalar must split identically");
    }

    #[test]
    fn wheel_rotates_through_all_slots() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut w = WheelFrontier::new(&mut d, 8, false, ScatterMode::Multisplit);
        let first = w.slot().members.data;
        let mut seen = vec![first];
        for _ in 0..WHEEL_SLOTS - 1 {
            w.advance();
            let cur = w.slot().members.data;
            assert!(!seen.contains(&cur), "each bucket gets its own slot");
            seen.push(cur);
        }
        w.advance();
        assert_eq!(w.slot().members.data, first, "the wheel wraps");
    }
}
