//! BL — the paper's baseline: synchronous push-mode SSSP with static
//! load balancing (§5.2.1).
//!
//! This is the topology-driven style of Harish & Narayanan (HiPC'07),
//! which the paper cites as the original GPU SSSP and whose execution
//! model matches the description "synchronous push mode with the
//! static load balancing strategy": every iteration launches one
//! thread per vertex of the *whole* graph; threads whose mask bit is
//! set relax all their out-edges (no buckets, no light/heavy split)
//! and set the mask of improved neighbours; a kernel launch and a grid
//! barrier separate iterations, which repeat until no mask bit is set.
//! Work-inefficient, divergence-heavy and iteration-bound — exactly
//! the bottlenecks the paper's three optimizations attack.

use super::buffers::GraphBuffers;
use crate::stats::{SsspResult, UpdateStats};
use crate::{Csr, VertexId};
use rdbs_gpu_sim::{Buf, Device};
use std::cell::Cell;

/// Per-query device scratch for [`bl_on`]: the frontier mask and the
/// progress flag, recyclable across queries of the same graph.
pub struct BlScratch {
    pub(crate) mask: Buf,
    /// `progress[0] != 0` ⇔ some vertex was improved this iteration.
    pub(crate) progress: Buf,
}

impl BlScratch {
    /// Allocate fresh scratch for an `n`-vertex graph.
    pub fn new(device: &mut Device, n: u32) -> Self {
        let mask = device.alloc("bl_mask", n as usize);
        let progress = device.alloc("bl_progress", 1);
        Self { mask, progress }
    }

    /// Assemble scratch from caller-provided (e.g. pooled) parts.
    pub(crate) fn from_parts(mask: Buf, progress: Buf) -> Self {
        Self { mask, progress }
    }

    /// Reset for a fresh query: all mask bits cleared.
    pub fn reset(&self, device: &mut Device) {
        device.fill(self.mask, 0);
        device.write_word(self.progress, 0, 0);
    }
}

/// Run the baseline on an already-constructed device. Returns the
/// result; simulated time/counters accumulate on `device`.
///
/// The one-shot entry point: uploads the graph, allocates fresh
/// scratch, delegates to [`bl_on`].
pub fn bl(device: &mut Device, graph: &Csr, source: VertexId) -> SsspResult {
    let gb = GraphBuffers::upload(device, graph);
    let scratch = BlScratch::new(device, graph.num_vertices() as u32);
    bl_on(device, gb, &scratch, graph, source)
}

/// Run the baseline against caller-resident device state (see
/// [`crate::service`]); resets `scratch` and the distance vector.
pub fn bl_on(
    device: &mut Device,
    gb: GraphBuffers,
    scratch: &BlScratch,
    graph: &Csr,
    source: VertexId,
) -> SsspResult {
    let n = graph.num_vertices() as u32;
    assert!(source < n, "source out of range");
    scratch.reset(device);
    gb.reset_dist(device, source);
    let mask = scratch.mask;
    let progress = scratch.progress;

    let mut stats = UpdateStats::default();
    let total_updates = Cell::new(0u64);
    let checks = Cell::new(0u64);
    let active = Cell::new(0u64);

    device.write_word(mask, source as usize, 1);
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        device.write_word(progress, 0, 0);
        let active_before = active.get();
        device.launch("bl_relax", n as u64, |lane| {
            let v = lane.tid() as u32;
            if lane.ld(mask, v) == 0 {
                return;
            }
            active.set(active.get() + 1);
            // Atomic: a concurrent improver may set this same mask
            // word — clear and set must both be schedule-independent.
            lane.atomic_exch(mask, v, 0);
            // Volatile: the mask/dist handshake with concurrent
            // improvers needs a coherent read.
            let dv = lane.ld_volatile(gb.dist, v);
            let start = lane.ld(gb.row, v);
            let end = lane.ld(gb.row, v + 1);
            for e in start..end {
                let v2 = lane.ld(gb.adj, e);
                let w = lane.ld(gb.wt, e);
                lane.alu(2);
                let nd = dv.saturating_add(w);
                checks.set(checks.get() + 1);
                let dv2 = lane.ld(gb.dist, v2);
                if nd < dv2 {
                    let old = lane.atomic_min(gb.dist, v2, nd);
                    if nd < old {
                        total_updates.set(total_updates.get() + 1);
                        // Warp-aggregated publishes: the warp's
                        // improvers of one mask word collapse to a
                        // single store, and only the warp leader pays
                        // the progress[0] atomic — many improvers hit
                        // both words, so scalar exchanges serialized
                        // here.
                        lane.gang_flag(mask, v2, 1);
                        lane.gang_flag_once(progress, 0, 1);
                    }
                }
            }
        });
        device.charge_barrier();
        stats.peak_bucket_layer_active.push(active.get() - active_before);
        if device.read_word(progress, 0) == 0 {
            break;
        }
    }

    stats.phase1_layers.push(rounds);
    stats.total_updates = total_updates.get();
    stats.checks = checks.get();
    let dist = gb.download_dist(device);
    SsspResult { source, dist, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra;
    use crate::validate::check_against;
    use crate::INF;
    use rdbs_gpu_sim::DeviceConfig;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn random_graph(seed: u64, n: usize, m: usize) -> Csr {
        let mut el = erdos_renyi(n, m, seed);
        uniform_weights(&mut el, seed + 1);
        build_undirected(&el)
    }

    #[test]
    fn matches_dijkstra() {
        for seed in 0..4 {
            let g = random_graph(seed, 60, 240);
            let mut d = Device::new(DeviceConfig::test_tiny());
            let r = bl(&mut d, &g, 0);
            let oracle = dijkstra(&g, 0);
            check_against(&oracle.dist, &r.dist).unwrap();
        }
    }

    #[test]
    fn charges_launch_and_barrier_per_round() {
        let el = EdgeList::from_edges(4, (0..3).map(|i| (i, i + 1, 5)).collect());
        let g = build_undirected(&el);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let r = bl(&mut d, &g, 0);
        assert_eq!(r.dist, vec![0, 5, 10, 15]);
        // A path propagates one hop per synchronous iteration (the
        // final iteration makes no progress and terminates the loop).
        assert_eq!(r.stats.phase1_layers, vec![4]);
        assert_eq!(d.counters().barriers, 4);
        assert_eq!(d.counters().kernel_launches, 4);
        assert!(d.elapsed_ms() > 0.0);
    }

    #[test]
    fn topology_driven_launches_whole_graph() {
        let g = random_graph(3, 64, 200);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let r = bl(&mut d, &g, 0);
        let rounds = r.stats.phase1_layers[0] as u64;
        // Static load balancing: every iteration runs n threads.
        assert_eq!(d.counters().threads, rounds * 64);
    }

    #[test]
    fn work_counters_populated() {
        let g = random_graph(7, 100, 600);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let r = bl(&mut d, &g, 0);
        assert!(r.stats.total_updates > 0);
        assert!(r.stats.checks >= r.stats.total_updates);
        assert!(r.work_ratio().unwrap() >= 1.0);
        assert!(d.counters().inst_executed_atomics > 0);
    }

    #[test]
    fn unreachable_stays_inf() {
        let el = EdgeList::from_edges(3, vec![(0, 1, 2)]);
        let g = build_undirected(&el);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let r = bl(&mut d, &g, 0);
        assert_eq!(r.dist, vec![0, 2, INF]);
    }
}
