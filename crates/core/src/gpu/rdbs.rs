//! RDBS — the paper's bucket-aware asynchronous Δ-stepping (Alg. 2),
//! with every optimization individually toggleable for the Fig. 8
//! ablation study.
//!
//! Per bucket:
//!
//! * **Phase 1** processes light edges of active vertices from the
//!   small/medium/large workload lists. With BASYN it runs inside one
//!   persistent-kernel session — no per-layer launch, no barrier,
//!   updates immediately visible (§4.3); without, every layer is a
//!   fresh kernel launch plus a grid barrier. With ADWL, small
//!   vertices are handled by their parent thread, medium ones by a
//!   32-lane warp gang, large ones by dynamic-parallelism child
//!   kernels with one thread per light edge (§4.2, Fig. 5).
//! * **Phases 2 & 3** are fused into one synchronous pass (kernel
//!   fusion, §4.2): relax heavy edges of every vertex settled in the
//!   current bucket, then collect the next bucket's active vertices
//!   into the workload lists — jumping over empty distance windows via
//!   an `atomicMin` reduction.
//! * Between buckets the width Δᵢ is readjusted by Eq. 1–2
//!   ([`crate::adaptive_delta`]), and the heavy-edge offsets are
//!   recomputed on-device when the width changed (§4.1: "the offset of
//!   heavy edges can be changed immediately").
//!
//! The worklists themselves live behind the pluggable [`Frontier`]
//! seam ([`super::frontier`]): the classic single queue set, a bucket
//! wheel, or the multi-level multi-queue whose full sub-queues *spill*
//! into a deferred level instead of overflowing. A spilling frontier
//! changes two driver invariants: the phase-1/phase-2 staleness check
//! only rejects `dist >= hi` (a deferred activation arrives with a
//! distance below the current window and is re-relaxed idempotently),
//! and a bucket that looks finished re-runs while any deferred level
//! still holds entries.

use super::buffers::{DeviceQueue, GraphBuffers, QueueOverflow};
use super::frontier::{AnyFrontier, Frontier, FrontierKind, FrontierView, ScatterMode};
use crate::adaptive_delta::DeltaController;
use crate::stats::{trace as relax_trace, SsspResult, UpdateStats};
use crate::{default_delta, Csr, Dist, VertexId, Weight, INF};
use rdbs_gpu_sim::{Buf, Device, Lane};
use std::cell::Cell;
use std::rc::Rc;

/// Which of the paper's optimizations are active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RdbsConfig {
    /// Property-driven reordering: the input graph was preprocessed
    /// with `rdbs_graph::reorder::pro` (weight-sorted rows + heavy
    /// offsets). The kernels then iterate light prefixes branch-free.
    pub pro: bool,
    /// Adaptive load balancing: three workload lists with warp/block
    /// gangs and dynamic parallelism.
    pub adwl: bool,
    /// Bucket-aware asynchronous phase 1 + adaptive Δ.
    pub basyn: bool,
    /// Initial bucket width Δ₀ (`None` → [`default_delta`]).
    pub delta0: Option<Weight>,
    /// Device frontier layout ([`FrontierKind::Single`] reproduces
    /// the original queue set bit-for-bit).
    pub frontier: FrontierKind,
    /// How kernels publish into the frontier queues
    /// ([`ScatterMode::Scalar`] reproduces the per-element atomic
    /// path; the default aggregates per warp).
    pub scatter: ScatterMode,
}

impl RdbsConfig {
    /// The full RDBS: BASYN + PRO + ADWL (the paper's headline).
    pub fn full() -> Self {
        Self {
            pro: true,
            adwl: true,
            basyn: true,
            delta0: None,
            frontier: FrontierKind::Single,
            scatter: ScatterMode::Multisplit,
        }
    }

    /// Fig. 8's `BASYN+PRO` ablation.
    pub fn basyn_pro() -> Self {
        Self {
            pro: true,
            adwl: false,
            basyn: true,
            delta0: None,
            frontier: FrontierKind::Single,
            scatter: ScatterMode::Multisplit,
        }
    }

    /// Fig. 8's `BASYN+ADWL` ablation.
    pub fn basyn_adwl() -> Self {
        Self {
            pro: false,
            adwl: true,
            basyn: true,
            delta0: None,
            frontier: FrontierKind::Single,
            scatter: ScatterMode::Multisplit,
        }
    }

    /// BASYN alone (not plotted in Fig. 8 but useful for ablations).
    pub fn basyn_only() -> Self {
        Self {
            pro: false,
            adwl: false,
            basyn: true,
            delta0: None,
            frontier: FrontierKind::Single,
            scatter: ScatterMode::Multisplit,
        }
    }

    /// Plain synchronous Δ-stepping on GPU (no paper optimization).
    pub fn sync_delta() -> Self {
        Self {
            pro: false,
            adwl: false,
            basyn: false,
            delta0: None,
            frontier: FrontierKind::Single,
            scatter: ScatterMode::Multisplit,
        }
    }

    /// Run on the given frontier layout.
    pub fn with_frontier(mut self, frontier: FrontierKind) -> Self {
        self.frontier = frontier;
        self
    }

    /// Publish into the frontier with the given scatter mode.
    pub fn with_scatter(mut self, scatter: ScatterMode) -> Self {
        self.scatter = scatter;
        self
    }

    /// Human-readable variant label matching the paper's legends,
    /// suffixed with the frontier layout when it is not the default.
    pub fn label(&self) -> String {
        let mut label = if !self.basyn && !self.pro && !self.adwl {
            "SYNC-Δ".to_string()
        } else {
            let mut parts: Vec<&str> = Vec::new();
            if self.basyn {
                parts.push("BASYN");
            }
            if self.pro {
                parts.push("PRO");
            }
            if self.adwl {
                parts.push("ADWL");
            }
            parts.join("+")
        };
        label.push_str(self.frontier.label_suffix());
        label
    }
}

/// Work-counter cells shared between host and kernel closures
/// (instrumentation only — adds no simulated instructions).
#[derive(Default)]
struct Inst {
    checks: Cell<u64>,
    updates: Cell<u64>,
    active: Cell<u64>,
}

/// Per-bucket trace of a GPU run (coarser than the sequential
/// [`crate::seq::delta_stepping::BucketTrace`]).
#[derive(Clone, Debug, Default)]
pub struct GpuBucketTrace {
    /// Low edge of the bucket's distance window.
    pub lo: u64,
    /// Width used for this bucket (also the light/heavy threshold).
    pub width: u32,
    /// Phase-1 scheduling rounds.
    pub layers: u32,
    /// Active (non-stale) vertices processed in phase 1.
    pub active: u64,
    /// Converged vertices (C_i of Eq. 1).
    pub converged: u64,
    /// Lanes used (T_i of Eq. 1).
    pub threads: u64,
}

/// A per-bucket monotonicity audit hit: a distance that *increased*,
/// or a settled vertex (below the bucket's window) that changed at
/// all. Correct Δ-stepping can do neither — every write is an
/// `atomicMin` of a candidate ≥ the window floor — so any hit is
/// evidence of device-level corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonotonicityViolation {
    pub vertex: VertexId,
    /// Low edge of the bucket window after which the hit was observed.
    pub bucket_lo: u64,
    pub before: Dist,
    pub after: Dist,
}

/// Keep the audit list bounded on heavily-faulted runs.
const AUDIT_CAP: usize = 256;

/// Result of an RDBS run plus the per-bucket trace.
pub struct RdbsRun {
    pub result: SsspResult,
    pub buckets: Vec<GpuBucketTrace>,
    /// Per-bucket monotonicity audit hits. Only populated when the
    /// device has a fault plan armed — fault-free runs skip the audit
    /// entirely (no extra reads, bit-identical results).
    pub audit: Vec<MonotonicityViolation>,
}

/// Per-query device scratch for [`rdbs_on`]: the frontier (workload
/// lists, membership, pending marks — whatever the layout needs) and
/// the phase-3 scan cells. Allocated once and recycled across queries
/// of the same graph by the resident service ([`crate::service`]) via
/// [`RdbsScratch::reset`].
pub struct RdbsScratch {
    pub(crate) frontier: AnyFrontier,
    /// `scan_out[0]` = next-bucket active count, `scan_out[1]` = min
    /// unsettled distance beyond the window.
    pub(crate) scan_out: Buf,
}

impl RdbsScratch {
    /// Allocate fresh scratch for an `n`-vertex graph.
    pub fn new(device: &mut Device, n: u32, config: RdbsConfig) -> Self {
        let frontier = AnyFrontier::new(device, n, config.adwl, config.frontier, config.scatter);
        let scan_out = device.alloc("scan_out", 2);
        Self { frontier, scan_out }
    }

    /// Assemble scratch from caller-provided (e.g. pooled) parts.
    pub(crate) fn from_parts(frontier: AnyFrontier, scan_out: Buf) -> Self {
        Self { frontier, scan_out }
    }

    /// Reset for a fresh query: empty non-overflowed queues, cleared
    /// pending marks. Queue *contents* are not zeroed — the cursors
    /// define what is live.
    pub fn reset(&self, device: &mut Device) {
        self.frontier.reset(device);
    }
}

/// Run RDBS (or any ablation) on `device`.
///
/// The one-shot entry point: uploads the graph, allocates fresh
/// scratch and a fresh Δ controller, and delegates to [`rdbs_on`].
///
/// If `config.pro` the graph must already be preprocessed (weight
/// sorted, heavy offsets attached — see `rdbs_graph::reorder::pro`);
/// the distances returned are in the graph's labelling
/// ([`super::run_gpu`] maps them back to original ids).
pub fn rdbs(device: &mut Device, graph: &Csr, source: VertexId, config: RdbsConfig) -> RdbsRun {
    let n = graph.num_vertices() as u32;
    let width0 = config.delta0.unwrap_or_else(|| default_delta(graph));
    // Utilization floor: a bucket that cannot fill a quarter of the
    // device's lanes doubles Δ (§4.3's utilization driver).
    let lanes = device.config().num_sms as u64 * 32 * 2;
    let mut controller = DeltaController::new(width0).with_target_parallelism(lanes);
    let gb = GraphBuffers::upload(device, graph);
    let scratch = RdbsScratch::new(device, n, config);
    match rdbs_on(device, gb, &scratch, graph, source, config, &mut controller) {
        Ok(run) => run,
        // Fault-free runs cannot overflow (capacity-n lists with
        // pending dedup; the MLMQ spills instead); under an armed
        // fault plan the panic is a *detection* the recovery ladder
        // ([`crate::recover`]) catches.
        Err(e) => panic!("{e}"),
    }
}

/// Run RDBS against caller-resident device state: graph arrays +
/// distance buffer (`gb`), recyclable scratch, and a Δ controller
/// whose current width seeds Δ₀ (warm-started across queries by the
/// resident service). Resets `scratch` and the distance vector
/// itself; `Err` on a detected device-queue overflow (the queues'
/// sticky cells are checked every bucket).
#[allow(clippy::too_many_arguments)]
pub fn rdbs_on(
    device: &mut Device,
    gb: GraphBuffers,
    scratch: &RdbsScratch,
    graph: &Csr,
    source: VertexId,
    config: RdbsConfig,
    controller: &mut DeltaController,
) -> Result<RdbsRun, QueueOverflow> {
    let mut driver = RdbsDriver::start(device, gb, scratch, graph, source, config, controller);
    while !driver.step(device, graph, controller)? {}
    Ok(driver.finish(device))
}

/// A resumable RDBS run: the loop of [`rdbs_on`] reified as a state
/// machine so a concurrent scheduler can interleave many queries on
/// one device at bucket granularity. `start` seeds the query,
/// [`RdbsDriver::step`] processes one bucket (phase 1 → fused phases
/// 2&3 → Δ readjust), and [`RdbsDriver::finish`] downloads the result.
/// Driving `start → step* → finish` back-to-back is bit-identical to
/// [`rdbs_on`] — the scheduler only changes *whose* buckets run
/// between a query's own.
pub(crate) struct RdbsDriver {
    gb: GraphBuffers,
    /// The driver's own copy of the scratch frontier (its rotation
    /// cursor advances per bucket; the scratch copy stays at slot 0).
    frontier: AnyFrontier,
    scan_out: Buf,
    config: RdbsConfig,
    source: VertexId,
    n: u32,
    lo: u64,
    width: Weight,
    width0: Weight,
    settled_before: u64,
    /// Distance snapshot for the per-bucket monotonicity audit; only
    /// taken when faults are armed, so the fault-free path reads
    /// nothing extra and stays bit-identical.
    audit_prev: Option<Vec<Dist>>,
    inst: Rc<Inst>,
    traces: Vec<GpuBucketTrace>,
    audit: Vec<MonotonicityViolation>,
}

impl RdbsDriver {
    /// Validate, reset the scratch + distance buffer, and seed the
    /// source — everything [`rdbs_on`] does before its bucket loop.
    pub(crate) fn start(
        device: &mut Device,
        gb: GraphBuffers,
        scratch: &RdbsScratch,
        graph: &Csr,
        source: VertexId,
        config: RdbsConfig,
        controller: &mut DeltaController,
    ) -> Self {
        let n = graph.num_vertices() as u32;
        assert!(source < n, "source out of range");
        if config.pro {
            assert!(
                graph.heavy_offsets().is_some(),
                "PRO requires a graph preprocessed with rdbs_graph::reorder::pro"
            );
        }
        let width0 = controller.delta();
        controller.start_run();

        scratch.reset(device);
        gb.reset_dist(device, source);
        let frontier = scratch.frontier;
        let scan_out = scratch.scan_out;

        // Seed the source.
        frontier.seed(device, graph, source);

        let audit_prev: Option<Vec<Dist>> =
            device.faults_armed().then(|| device.read(gb.dist)[..n as usize].to_vec());

        // BASYN: one persistent manager/worker kernel serves phase 1
        // for the whole run — a single host launch (§4.3).
        if config.basyn {
            device.charge_kernel_launch();
        }

        Self {
            gb,
            frontier,
            scan_out,
            config,
            source,
            n,
            lo: 0,
            width: width0,
            width0,
            settled_before: 0,
            audit_prev,
            inst: Rc::new(Inst::default()),
            traces: Vec::new(),
            audit: Vec::new(),
        }
    }

    /// Process one bucket. Returns `Ok(true)` when the run is
    /// complete (call [`RdbsDriver::finish`]), `Ok(false)` when more
    /// buckets remain, `Err` on a detected device-queue overflow (the
    /// queues' sticky cells are checked every bucket).
    pub(crate) fn step(
        &mut self,
        device: &mut Device,
        graph: &Csr,
        controller: &mut DeltaController,
    ) -> Result<bool, QueueOverflow> {
        let (gb, frontier, scan_out, config) = (self.gb, self.frontier, self.scan_out, self.config);
        // A spilling frontier hands phase 1 activations whose
        // distances settled below the window one bucket ago; accept
        // them (re-relaxation is idempotent) instead of calling them
        // stale.
        let accept_below = frontier.can_spill();
        let lo = self.lo;
        let width = self.width;
        let hi = lo + width as u64;
        let inst = &self.inst;
        let mut trace = GpuBucketTrace { lo, width, ..Default::default() };

        // ---------------- Phase 1: light edges ----------------
        let active_before = inst.active.get();
        let mut bucket_members: Vec<VertexId> = Vec::new();
        loop {
            let layer = frontier.drain_layer(device, graph);
            bucket_members.extend(layer.new_members);
            let mut any = false;
            if relax_trace::armed() {
                relax_trace::set_context(lo, relax_trace::Phase::Light, trace.layers);
            }
            for (c, items) in layer.lists.iter().enumerate() {
                if items.is_empty() {
                    continue;
                }
                any = true;
                trace.threads += phase1_wave_threads(graph, c, items, width, config.pro);
                run_phase1_list(
                    device,
                    config.basyn,
                    c,
                    items,
                    gb,
                    frontier.relax_view(),
                    lo,
                    hi,
                    width,
                    accept_below,
                    inst,
                );
            }
            if !any {
                break;
            }
            trace.layers += 1;
            if !config.basyn {
                device.charge_barrier(); // synchronous iteration barrier
            }
        }
        trace.active = inst.active.get() - active_before;

        // C_i: vertices settled by this bucket (host instrumentation).
        let settled_now = device.read(gb.dist)[..self.n as usize]
            .iter()
            .filter(|&&d| (d as u64) < hi && d != INF)
            .count() as u64;
        trace.converged = settled_now.saturating_sub(self.settled_before);
        self.settled_before = settled_now;

        // Readjust Δ (Update_Delta_Epsilon of Alg. 2).
        let new_width = if config.basyn {
            controller.finish_bucket(trace.converged, trace.threads.max(1))
        } else {
            self.width0
        };

        // ---------------- Phases 2 & 3: fused sync kernel ----------------
        // One launch per bucket (kernel fusion, §4.2); its internal
        // sub-phases are waves separated by a grid barrier.
        device.charge_kernel_launch();
        // Dedup re-activations: the membership *set* is what phase 2
        // relaxes (a vertex improved twice in phase 1 is one member).
        bucket_members.sort_unstable();
        bucket_members.dedup();
        if relax_trace::armed() {
            relax_trace::set_context(lo, relax_trace::Phase::Heavy, 0);
        }
        heavy_relax_wave(
            device,
            gb,
            frontier.membership_backing(),
            &bucket_members,
            graph,
            lo,
            hi,
            width,
            config.pro,
            accept_below,
            config.scatter,
            inst,
        );
        device.charge_barrier();

        let mut next_lo = hi;
        let mut next_hi = next_lo + new_width as u64;
        let mut done = false;
        loop {
            device.write_word(scan_out, 0, 0);
            device.write_word(scan_out, 1, INF);
            collect_wave(device, gb, frontier.collect_view(), scan_out, next_lo, next_hi, inst);
            let active = device.read_word(scan_out, 0);
            let min_beyond = device.read_word(scan_out, 1);
            if active > 0 {
                break;
            }
            if min_beyond == INF {
                done = true;
                break;
            }
            // Jump the empty distance window.
            next_lo = min_beyond as u64;
            next_hi = next_lo + new_width as u64;
        }
        // A spilling frontier may still hold deferred entries even
        // though the distance scan looks converged: run another
        // bucket so they drain (their relaxations are idempotent;
        // convergence re-checks afterwards).
        if done && frontier.has_deferred(device) {
            done = false;
        }
        // Re-split light/heavy for the adjusted Δ (§4.1: the offset
        // "can be changed immediately"). Settled vertices are skipped —
        // their edge ranges are never consulted again.
        if config.pro && new_width != width && !done {
            // Sub-phase grid barrier of the fused kernel: phase 3's
            // enqueue-side classification reads the heavy offsets this
            // wave is about to overwrite.
            device.charge_barrier();
            update_heavy_offsets_wave(device, gb, new_width, next_lo);
        }
        if config.basyn && !done {
            // The fused kernel retires with a grid barrier before the
            // persistent kernel's next-bucket waves are released: the
            // paper drops the barrier between phase-1 *layers* (§4.3),
            // not between buckets — phase 3's collected worklists and
            // the re-split heavy offsets must be visible to phase 1.
            device.charge_barrier();
        }
        if let Some(prev) = self.audit_prev.as_mut() {
            audit_bucket(device, gb, prev, lo, &mut self.audit);
        }
        // Surface any queue overflow this bucket produced (the sticky
        // cells survive the drains above) before trusting its output.
        frontier.check(device)?;
        self.traces.push(trace);
        if !done {
            self.lo = next_lo;
            self.width = new_width;
            // Rotate: the level/slot phase 3 collected into becomes
            // the next bucket's active one.
            self.frontier.advance();
        }
        Ok(done)
    }

    /// Assemble the run stats and download the distances.
    pub(crate) fn finish(self, device: &mut Device) -> RdbsRun {
        let mut stats = UpdateStats {
            checks: self.inst.checks.get(),
            total_updates: self.inst.updates.get(),
            ..Default::default()
        };
        stats.phase1_layers = self.traces.iter().map(|t| t.layers).collect();
        stats.bucket_active = self.traces.iter().map(|t| t.active).collect();
        // The result download synchronizes the device, retiring the
        // persistent kernel — without this, a resident service's next
        // query would share a race window with this run's final waves.
        device.charge_barrier();
        let dist = self.gb.download_dist(device);
        RdbsRun {
            result: SsspResult { source: self.source, dist, stats },
            buckets: self.traces,
            audit: self.audit,
        }
    }
}

/// Compare the live distances with the previous bucket's snapshot:
/// distances must never increase, and vertices settled below the
/// current window must not change at all. O(V) host-side, run only
/// between buckets of a fault-armed device.
fn audit_bucket(
    device: &Device,
    gb: GraphBuffers,
    prev: &mut [Dist],
    bucket_lo: u64,
    audit: &mut Vec<MonotonicityViolation>,
) {
    let cur = device.read(gb.dist);
    for (v, (&after, before)) in cur.iter().zip(prev.iter_mut()).enumerate() {
        let increased = after > *before;
        let settled_moved = (*before as u64) < bucket_lo && after != *before;
        if (increased || settled_moved) && audit.len() < AUDIT_CAP {
            audit.push(MonotonicityViolation {
                vertex: v as VertexId,
                bucket_lo,
                before: *before,
                after,
            });
        }
        *before = after;
    }
}

/// Lanes a phase-1 wave will use (T_i accounting).
fn phase1_wave_threads(
    graph: &Csr,
    class: usize,
    items: &[VertexId],
    width: Weight,
    pro: bool,
) -> u64 {
    match class {
        0 => items.len() as u64,
        1 => items.len() as u64 * 32,
        _ => items
            .iter()
            .map(|&v| {
                1 + if pro { graph.light_degree(v, width) as u64 } else { graph.degree(v) as u64 }
            })
            .sum(),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_phase1_list(
    device: &mut Device,
    basyn: bool,
    class: usize,
    items: &[VertexId],
    gb: GraphBuffers,
    view: FrontierView,
    lo: u64,
    hi: u64,
    width: Weight,
    accept_below: bool,
    inst: &Rc<Inst>,
) {
    let gang = match class {
        0 => 1u32,
        1 => 32,
        _ => 1, // large vertices: parent thread spawns children
    };
    let large = class == 2;
    let inst_outer = Rc::clone(inst);
    let body = move |lane: &mut Lane<'_>| {
        let i = lane.tid() as usize;
        let rank = lane.gang_rank();
        let stride = lane.gang_size();
        // Fetch the work item (charged against the queue buffer).
        view.charge_slot(lane, class, i as u32);
        let v = items[i];
        // EVERY lane of the gang test-and-clears the pending mark
        // before its own dist read — not just rank 0. The dequeue
        // handshake is only sound if clearing the mark happens before
        // any lane of this activation samples `dist[v]`: an improver
        // that lands between a sibling's (stale) read and a
        // rank-0-only clear would see pending == 1, skip its re-push,
        // and the improvement would never reach that sibling's edges
        // (schedule fuzzing found exactly this lost update — rank 0
        // runs first only in ascending lane order). The load-gated
        // exchange keeps the canonical atomic count at one exchange
        // per activation: whichever lane runs first clears, the rest
        // see 0 and skip.
        view.clear_pending(lane, v);
        // Volatile: this read races with another lane's atomicMin +
        // pending handshake; a snapshot read there would lose the
        // update (the improver saw pending == 1 and skipped the
        // re-enqueue).
        let dv = lane.ld_volatile(gb.dist, v);
        lane.alu(2);
        let dvu = dv as u64;
        if dvu >= hi || (!accept_below && dvu < lo) {
            return; // stale activation (deferred spills are accepted)
        }
        if rank == 0 {
            inst_outer.active.set(inst_outer.active.get() + 1);
        }
        let start = lane.ld(gb.row, v);
        let light_end = match gb.heavy {
            Some(h) => lane.ld(h, v),
            None => lane.ld(gb.row, v + 1),
        };
        if large {
            // Dynamic parallelism: one thread per light edge.
            let count = light_end.saturating_sub(start) as u64;
            if count == 0 {
                return;
            }
            let inst_child = Rc::clone(&inst_outer);
            let check_light = gb.heavy.is_none();
            lane.launch_child("phase1_child", count, move |cl| {
                let e = start + cl.tid() as u32;
                relax_light_edge(cl, gb, view, v, e, dv, hi, width, check_light, &inst_child);
            });
            return;
        }
        let check_light = gb.heavy.is_none();
        let mut e = start + rank;
        while e < light_end {
            relax_light_edge(lane, gb, view, v, e, dv, hi, width, check_light, &inst_outer);
            e += stride;
        }
    };
    let name = match class {
        0 => "phase1_small",
        1 => "phase1_medium",
        _ => "phase1_large",
    };
    if basyn {
        // Work dispatched inside the persistent phase-1 kernel.
        device.wave(name, items.len() as u64, gang, body);
    } else {
        // Synchronous mode: a fresh launch per layer and list.
        device.launch_gangs(name, items.len() as u64, gang, body);
    }
}

/// Relax one light-candidate edge `e` from a vertex at distance `dv`
/// (Alg. 1). When `check_light` (no PRO), the weight branch is taken
/// per edge — the divergence the paper's reordering removes.
#[allow(clippy::too_many_arguments)]
#[inline]
fn relax_light_edge(
    lane: &mut Lane<'_>,
    gb: GraphBuffers,
    view: FrontierView,
    src: VertexId,
    e: u32,
    dv: u32,
    hi: u64,
    width: Weight,
    check_light: bool,
    inst: &Inst,
) {
    // Multisplit compiles the relax loops warp-synchronously: the
    // aggregated enqueue ballots under `__activemask`, which pins a
    // reconvergence point at every iteration — so the relaxation's
    // atomics issue aligned across the warp instead of fragmenting
    // into per-lane instructions after earlier divergence. The scalar
    // baseline keeps the original divergent loop.
    if view.scatter() == ScatterMode::Multisplit {
        lane.converge();
    }
    let w = lane.ld(gb.wt, e);
    if check_light {
        lane.alu(1); // the light/heavy conditional branch
        if w >= width {
            return;
        }
    }
    let v2 = lane.ld(gb.adj, e);
    lane.alu(1);
    let nd = dv.saturating_add(w);
    inst.checks.set(inst.checks.get() + 1);
    // Volatile pre-check: concurrent lanes atomicMin this word; the
    // filter must see their progress or it re-attempts settled work.
    let dv2 = lane.ld_volatile(gb.dist, v2);
    if nd < dv2 {
        let old = lane.atomic_min(gb.dist, v2, nd);
        if nd < old {
            if relax_trace::armed() {
                relax_trace::record(src, v2, old, nd);
            }
            inst.updates.set(inst.updates.get() + 1);
            if (nd as u64) < hi {
                view.enqueue(lane, gb, v2);
            }
        }
    }
}

/// Phase 2: relax heavy edges of every vertex settled in the current
/// bucket, warp-cooperatively over the membership worklist the
/// enqueues accumulated (the paper's static balancing: "we coarsely
/// assign the same number of heavy edges to guarantee load
/// balancing"). The list may contain duplicates from within-bucket
/// re-activations and stale entries whose distance left the window —
/// both are filtered by the distance check, and heavy relaxation is
/// idempotent anyway.
#[allow(clippy::too_many_arguments)]
fn heavy_relax_wave(
    device: &mut Device,
    gb: GraphBuffers,
    members: DeviceQueue,
    items: &[VertexId],
    graph: &Csr,
    lo: u64,
    hi: u64,
    width: Weight,
    pro: bool,
    accept_below: bool,
    scatter: ScatterMode,
    inst: &Rc<Inst>,
) {
    if items.is_empty() {
        return;
    }
    // Static balancing (§4.2): pick the cooperative width from the
    // average work per vertex — a warp per vertex only pays off when
    // vertices carry warp-sized edge lists; sparse buckets use one
    // thread per vertex.
    let total_deg: u64 = items.iter().map(|&v| graph.degree(v) as u64).sum();
    let gang = if total_deg / items.len() as u64 >= 32 { 32 } else { 1 };
    let inst = Rc::clone(inst);
    let cap = members.capacity;
    // Republish the deduplicated membership list so the wave reads
    // live worklist slots — the per-layer drains above reset the tail,
    // and the compacted list can be longer than any single layer's
    // high-water mark (reading those slots would be uninitialized).
    for (i, &v) in items.iter().enumerate() {
        device.write_word(members.data, i % cap as usize, v);
    }
    device.wave("phase2_heavy", items.len() as u64, gang, move |lane| {
        let i = lane.tid() as usize;
        let rank = lane.gang_rank();
        let stride = lane.gang_size();
        let _ = members.read_slot(lane, i as u32 % cap);
        let v = items[i];
        // Volatile: in BASYN mode no barrier separates this fused
        // kernel from the persistent phase-1 waves still in flight.
        let dv = lane.ld_volatile(gb.dist, v);
        lane.alu(1);
        let dvu = dv as u64;
        if dvu >= hi || (!accept_below && dvu < lo) {
            return; // stale membership entry
        }
        let end = lane.ld(gb.row, v + 1);
        let hstart = match gb.heavy {
            Some(h) => lane.ld(h, v),
            None => lane.ld(gb.row, v),
        };
        let mut e = hstart + rank;
        while e < end {
            // Warp-synchronous discipline in multisplit mode: see
            // `relax_light_edge` — realigns the heavy-relax atomics.
            if scatter == ScatterMode::Multisplit {
                lane.converge();
            }
            let w = lane.ld(gb.wt, e);
            if !pro {
                lane.alu(1);
                if w < width {
                    e += stride;
                    continue; // light edge: phase 1 handled it
                }
            }
            let v2 = lane.ld(gb.adj, e);
            lane.alu(1);
            let nd = dv.saturating_add(w);
            inst.checks.set(inst.checks.get() + 1);
            let dv2 = lane.ld_volatile(gb.dist, v2);
            if nd < dv2 {
                let old = lane.atomic_min(gb.dist, v2, nd);
                if nd < old {
                    if relax_trace::armed() {
                        relax_trace::record(v, v2, old, nd);
                    }
                    inst.updates.set(inst.updates.get() + 1);
                }
            }
            e += stride;
        }
    });
}

/// Phase 3: collect the next bucket's active vertices into the
/// frontier; track the minimum unsettled distance beyond the window
/// so empty windows can be skipped.
fn collect_wave(
    device: &mut Device,
    gb: GraphBuffers,
    view: FrontierView,
    scan_out: Buf,
    next_lo: u64,
    next_hi: u64,
    inst: &Rc<Inst>,
) {
    let n = gb.n;
    let _ = inst;
    let multisplit = view.scatter() == ScatterMode::Multisplit;
    device.wave("phase3_collect", n as u64, 1, move |lane| {
        let v = lane.tid() as u32;
        let dv = lane.ld(gb.dist, v);
        lane.alu(2);
        if dv == INF {
            return;
        }
        let dvu = dv as u64;
        if dvu < next_lo {
            return; // settled
        }
        if dvu < next_hi {
            // The collected count and min-beyond scans discard their
            // results, so the multisplit build warp-reduces them into
            // one leader atomic each; and each lane owns its vertex,
            // so the enqueue dedup needs no exchange (`_distinct`).
            if multisplit {
                lane.gang_add(scan_out, 0, 1);
                view.enqueue_distinct(lane, gb, v);
            } else {
                lane.atomic_add(scan_out, 0, 1);
                view.enqueue(lane, gb, v);
            }
        } else if multisplit {
            lane.gang_min(scan_out, 1, dv);
        } else {
            lane.atomic_min(scan_out, 1, dv);
        }
    });
}

/// Recompute heavy offsets on-device for a new Δ (binary search over
/// the weight-sorted row — §4.1's "changed immediately"). Vertices
/// already settled (`dist < settled_below`, reached) are skipped:
/// their edge ranges are never consulted again.
fn update_heavy_offsets_wave(
    device: &mut Device,
    gb: GraphBuffers,
    new_width: Weight,
    settled_below: u64,
) {
    let heavy = gb.heavy.expect("PRO graphs carry heavy offsets");
    device.wave("update_heavy_offsets", gb.n as u64, 1, move |lane| {
        let v = lane.tid() as u32;
        let dv = lane.ld(gb.dist, v);
        lane.alu(1);
        if dv != INF && (dv as u64) < settled_below {
            return;
        }
        let mut lo = lane.ld(gb.row, v);
        let mut hi = lane.ld(gb.row, v + 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let w = lane.ld(gb.wt, mid);
            lane.alu(2);
            if w < new_width {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lane.st(heavy, v, lo);
    });
}

/// Recompute every vertex's heavy offset for `width` — the resident
/// service's query-reset path. A finished query leaves per-vertex
/// offsets split at whatever width each vertex last saw before it
/// settled; a fresh query must start from a uniform split matching
/// its Δ₀, recomputed on-device with no H2D re-upload.
pub(crate) fn refresh_heavy_offsets(device: &mut Device, gb: GraphBuffers, width: Weight) {
    update_heavy_offsets_wave(device, gb, width, 0);
    // The next query's kernels are only launched after this wave
    // retires (stream order + the query's own launch): order the
    // refreshed offsets before their readers.
    device.charge_barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra;
    use crate::validate::check_against;
    use rdbs_gpu_sim::DeviceConfig;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, preferential_attachment, uniform_weights};
    use rdbs_graph::reorder;

    fn random_graph(seed: u64, n: usize, m: usize) -> Csr {
        let mut el = erdos_renyi(n, m, seed);
        uniform_weights(&mut el, seed + 1);
        build_undirected(&el)
    }

    fn run_config(g: &Csr, cfg: RdbsConfig) -> (RdbsRun, Device) {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let run = if cfg.pro {
            let delta0 = cfg.delta0.unwrap_or_else(|| default_delta(g));
            let (pg, perm) = reorder::pro(g, delta0);
            let src = perm.new_id(0);
            let mut run = rdbs(&mut d, &pg, src, cfg);
            run.result.dist = perm.unapply_to_array(&run.result.dist);
            run.result.source = 0;
            run
        } else {
            rdbs(&mut d, g, 0, cfg)
        };
        (run, d)
    }

    #[test]
    fn all_variants_match_dijkstra() {
        for seed in 0..3 {
            let g = random_graph(seed, 80, 400);
            let oracle = dijkstra(&g, 0);
            for cfg in [
                RdbsConfig::full(),
                RdbsConfig::basyn_pro(),
                RdbsConfig::basyn_adwl(),
                RdbsConfig::basyn_only(),
                RdbsConfig::sync_delta(),
            ] {
                let (run, _) = run_config(&g, cfg);
                check_against(&oracle.dist, &run.result.dist)
                    .unwrap_or_else(|m| panic!("seed {seed} {}: {m}", cfg.label()));
            }
        }
    }

    #[test]
    fn all_frontiers_match_dijkstra_on_every_ablation() {
        for seed in 0..2 {
            let g = random_graph(seed + 20, 80, 400);
            let oracle = dijkstra(&g, 0);
            for base in [RdbsConfig::full(), RdbsConfig::basyn_only(), RdbsConfig::sync_delta()] {
                for kind in FrontierKind::ALL {
                    let cfg = base.with_frontier(kind);
                    let (run, _) = run_config(&g, cfg);
                    check_against(&oracle.dist, &run.result.dist)
                        .unwrap_or_else(|m| panic!("seed {seed} {}: {m}", cfg.label()));
                }
            }
        }
    }

    #[test]
    fn single_frontier_is_bit_identical_to_the_pre_seam_layout() {
        // The refactor contract: running with the explicit Single
        // frontier is the *same computation* — same distances, same
        // instruction counts — as the layout the seam replaced.
        let g = random_graph(31, 100, 500);
        let (a, da) = run_config(&g, RdbsConfig::full());
        let (b, db) = run_config(&g, RdbsConfig::full().with_frontier(FrontierKind::Single));
        assert_eq!(a.result.dist, b.result.dist);
        assert_eq!(da.counters().inst_executed, db.counters().inst_executed);
        assert_eq!(
            da.counters().inst_executed_global_atomics,
            db.counters().inst_executed_global_atomics
        );
    }

    #[test]
    fn mlmq_spreads_publish_atomics() {
        // The headline claim at device level: on a frontier-heavy
        // graph the MLMQ publish path executes fewer global-memory
        // atomic instructions than the double-push single layout and
        // serializes less on shared tail counters. A per-element
        // claim, so it is graded on the scalar publish path — the
        // warp-aggregated scatter collapses both layouts' tail bumps
        // to one leader atomic per (warp × bucket) and mostly
        // equalizes them (the multisplit bench grades that regime).
        let g = random_graph(40, 400, 3200);
        let base = RdbsConfig::basyn_only().with_scatter(ScatterMode::Scalar);
        let (run_s, d_s) = run_config(&g, base);
        let (run_m, d_m) = run_config(&g, base.with_frontier(FrontierKind::Mlmq));
        assert_eq!(run_s.result.dist, run_m.result.dist);
        let a_s = d_s.counters().inst_executed_global_atomics;
        let a_m = d_m.counters().inst_executed_global_atomics;
        assert!(a_m < a_s, "mlmq atomics {a_m} vs single {a_s}");
    }

    #[test]
    fn mlmq_drains_deferred_spills_to_completion() {
        // Rig a one-shot scratch whose active level is tiny: phase-1
        // publish storms must spill to the deferred level, and the
        // driver's has_deferred guard must keep stepping until every
        // spilled entry is drained — correct distances, no overflow.
        let g = random_graph(41, 120, 700);
        let oracle = dijkstra(&g, 0);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let cfg = RdbsConfig::basyn_only().with_frontier(FrontierKind::Mlmq);
        let n = g.num_vertices() as u32;
        let width0 = default_delta(&g);
        let lanes = d.config().num_sms as u64 * 32 * 2;
        let mut controller = DeltaController::new(width0).with_target_parallelism(lanes);
        let gb = GraphBuffers::upload(&mut d, &g);
        let mut scratch = RdbsScratch::new(&mut d, n, cfg);
        let AnyFrontier::Mlmq(m) = &mut scratch.frontier else { unreachable!() };
        // Starve one active-level lane: every push hashed onto it
        // beyond two entries must take the spill path into the (fully
        // provisioned) deferred level.
        m.levels[0][0].capacity = 2;
        let run = rdbs_on(&mut d, gb, &scratch, &g, 0, cfg, &mut controller)
            .expect("spills are not overflow");
        check_against(&oracle.dist, &run.result.dist).unwrap();
    }

    #[test]
    fn powerlaw_graph_uses_gangs() {
        // A hub-heavy graph must exercise the medium (warp-gang) path.
        let mut el = preferential_attachment(600, 5, 3);
        uniform_weights(&mut el, 4);
        let g = build_undirected(&el);
        let oracle = dijkstra(&g, 0);
        let (run, d) = run_config(&g, RdbsConfig::full());
        check_against(&oracle.dist, &run.result.dist).unwrap();
        assert!(d.counters().warps > 0);
    }

    #[test]
    fn hub_vertex_takes_dynamic_parallelism_path() {
        // A star whose hub has > α = 256 light edges must be classified
        // Large and processed via a child kernel.
        let mut edges: Vec<(u32, u32, u32)> = (1..400u32).map(|v| (0, v, 0)).collect();
        edges.push((1, 399, 0)); // keep some non-hub structure
        let mut el = EdgeList::from_edges(400, edges);
        uniform_weights(&mut el, 6);
        let g = build_undirected(&el);
        let oracle = dijkstra(&g, 1);
        // Δ larger than any weight → all 399 hub edges are light.
        let cfg = RdbsConfig { delta0: Some(5000), ..RdbsConfig::full() };
        let mut d = Device::new(DeviceConfig::test_tiny());
        let (pg, perm) = reorder::pro(&g, 5000);
        let mut run = rdbs(&mut d, &pg, perm.new_id(1), cfg);
        run.result.dist = perm.unapply_to_array(&run.result.dist);
        check_against(&oracle.dist, &run.result.dist).unwrap();
        assert!(
            d.counters().child_kernel_launches > 0,
            "expected dynamic parallelism on the hub vertex"
        );
    }

    #[test]
    fn basyn_avoids_per_layer_launches() {
        // Force one big multi-layer bucket (Δ beyond every weight) so
        // the per-layer launch/barrier cost of synchronous mode shows.
        let g = random_graph(5, 120, 700);
        let cfg_async = RdbsConfig { delta0: Some(100_000), ..RdbsConfig::basyn_only() };
        let cfg_sync = RdbsConfig { delta0: Some(100_000), ..RdbsConfig::sync_delta() };
        let (_, d_async) = run_config(&g, cfg_async);
        let (_, d_sync) = run_config(&g, cfg_sync);
        assert!(
            d_async.counters().kernel_launches < d_sync.counters().kernel_launches,
            "async {} vs sync {}",
            d_async.counters().kernel_launches,
            d_sync.counters().kernel_launches
        );
        assert!(d_async.counters().barriers < d_sync.counters().barriers);
    }

    #[test]
    fn pro_reduces_load_instructions() {
        // Branch-free light prefixes must execute fewer warp-level
        // instructions than per-edge weight checks.
        let g = random_graph(8, 150, 1200);
        let (_, d_pro) = run_config(&g, RdbsConfig::basyn_pro());
        let (_, d_raw) = run_config(&g, RdbsConfig::basyn_only());
        let i_pro = d_pro.counters().inst_executed;
        let i_raw = d_raw.counters().inst_executed;
        assert!(i_pro < i_raw, "pro {i_pro} vs raw {i_raw}");
    }

    #[test]
    fn trace_is_consistent() {
        let g = random_graph(11, 100, 500);
        let (run, _) = run_config(&g, RdbsConfig::full());
        assert!(!run.buckets.is_empty());
        // Every processed bucket lies at increasing lo.
        for w in run.buckets.windows(2) {
            assert!(w[0].lo < w[1].lo);
        }
        // Stats mirror the trace.
        assert_eq!(run.result.stats.bucket_active.len(), run.buckets.len());
        let reached = run.result.reached() as u64;
        let converged: u64 = run.buckets.iter().map(|t| t.converged).sum();
        assert_eq!(converged, reached);
    }

    #[test]
    fn disconnected_component_terminates() {
        let el = EdgeList::from_edges(5, vec![(0, 1, 3), (2, 3, 4)]);
        let g = build_undirected(&el);
        let (run, _) = run_config(&g, RdbsConfig::full());
        assert_eq!(run.result.dist[0], 0);
        assert_eq!(run.result.dist[1], 3);
        assert_eq!(run.result.dist[2], INF);
        assert_eq!(run.result.dist[4], INF);
    }

    #[test]
    fn empty_window_jumping() {
        // A path with weight-1000 edges and Δ₀ = 100 creates many
        // empty windows; the min-reduction must jump them.
        let el = EdgeList::from_edges(4, (0..3).map(|i| (i, i + 1, 1000)).collect());
        let g = build_undirected(&el);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let cfg = RdbsConfig { delta0: Some(100), ..RdbsConfig::basyn_only() };
        let run = rdbs(&mut d, &g, 0, cfg);
        assert_eq!(run.result.dist, vec![0, 1000, 2000, 3000]);
        // Without jumping this would take 30 windows; with it, ~4.
        assert!(run.buckets.len() <= 6, "buckets {}", run.buckets.len());
    }

    #[test]
    fn labels() {
        assert_eq!(RdbsConfig::full().label(), "BASYN+PRO+ADWL");
        assert_eq!(RdbsConfig::basyn_pro().label(), "BASYN+PRO");
        assert_eq!(RdbsConfig::basyn_adwl().label(), "BASYN+ADWL");
        assert_eq!(RdbsConfig::sync_delta().label(), "SYNC-Δ");
        assert_eq!(
            RdbsConfig::full().with_frontier(FrontierKind::Mlmq).label(),
            "BASYN+PRO+ADWL+MLMQ"
        );
        assert_eq!(
            RdbsConfig::sync_delta().with_frontier(FrontierKind::Wheel).label(),
            "SYNC-Δ+WHEEL"
        );
    }
}
