//! Multi-GPU bucketed SSSP — the paper's stated future work ("we will
//! further explore a high-performance graph processing framework for
//! large-scale graphs on the multi-GPUs platform", §7).
//!
//! A bulk-synchronous 1-D partitioning over `k` simulated devices:
//!
//! * vertices are range-partitioned; each device holds the adjacency
//!   of its own vertices plus a full replicated distance vector;
//! * per bucket, devices relax the light edges of their local active
//!   vertices; improvements are collected in a device-side update
//!   queue, exchanged through a modelled interconnect (bytes over
//!   `interconnect_gbps` + a per-superstep latency), and merged with
//!   `min` on every replica; the inner loop repeats until no device
//!   has in-bucket work;
//! * phase 2 (heavy edges) runs per device over its settled range,
//!   followed by one more exchange and a synchronized window advance
//!   with empty-window jumping.
//!
//! Wall time is `Σ supersteps max_d(device-step time) + transfer
//! time` — the devices run concurrently, the exchange is the barrier.

use super::buffers::{DeviceQueue, GraphBuffers, QueueOverflow};
use crate::stats::{SsspResult, UpdateStats};
use crate::{default_delta, Csr, Dist, VertexId, Weight, INF};
use rdbs_gpu_sim::{
    Device, DeviceConfig, FaultEvent, FaultPlan, FaultSpec, SanConfig, SanViolation,
};
use std::cell::Cell;

/// Multi-GPU run configuration.
#[derive(Clone, Debug)]
pub struct MultiGpuConfig {
    /// Devices in the system (1 degenerates to single-GPU).
    pub num_devices: usize,
    /// Per-device hardware model.
    pub device: DeviceConfig,
    /// Inter-GPU bandwidth in GB/s (NVLink-class default).
    pub interconnect_gbps: f64,
    /// Per-exchange latency in microseconds.
    pub exchange_latency_us: f64,
    /// Bucket width Δ (fixed across buckets in the multi-GPU port).
    pub delta0: Option<Weight>,
}

impl MultiGpuConfig {
    /// `k` V100s over NVLink.
    pub fn v100s(k: usize) -> Self {
        Self {
            num_devices: k,
            device: DeviceConfig::v100(),
            interconnect_gbps: 50.0,
            exchange_latency_us: 5.0,
            delta0: None,
        }
    }
}

/// Outcome of a multi-GPU run.
pub struct MultiGpuRun {
    pub result: SsspResult,
    /// Modelled wall time: max-over-devices compute per superstep plus
    /// exchange time.
    pub elapsed_ms: f64,
    /// Milliseconds spent in the interconnect.
    pub exchange_ms: f64,
    /// Bytes moved between devices.
    pub exchanged_bytes: u64,
    /// Bulk-synchronous supersteps executed.
    pub supersteps: u32,
    /// Buckets processed.
    pub buckets: u32,
    /// Injection log of the faulted device (empty on fault-free runs).
    pub fault_events: Vec<FaultEvent>,
    /// Total injections, including any beyond the log cap.
    pub fault_injections: u64,
}

struct Shard {
    device: Device,
    gb: GraphBuffers,
    frontier: DeviceQueue,
    updates: DeviceQueue,
    /// Dedup flag for the update queue (a vertex improved several
    /// times per superstep is reported once).
    dirty: Box_,
    pending: Box_,
    /// Owned vertex range.
    lo: u32,
    hi: u32,
    /// elapsed_ms at the start of the current superstep.
    mark: f64,
}

type Box_ = rdbs_gpu_sim::Buf;

impl Shard {
    fn step_time(&mut self) -> f64 {
        let now = self.device.elapsed_ms();
        let dt = now - self.mark;
        self.mark = now;
        dt
    }
}

/// Resident multi-GPU state: `k` simulated devices with the graph
/// arrays uploaded once at construction (the replicated-CSR layout
/// common in 1-D multi-GPU SSSP), re-runnable for many sources via
/// [`MultiGpuState::run`] — the batched service's multi-device
/// backend. Per-query state (distances, frontiers, update queues,
/// dedup marks) is reset in place; nothing is re-uploaded.
pub struct MultiGpuState {
    shards: Vec<Shard>,
    config: MultiGpuConfig,
    n: u32,
    chunk: u32,
    delta: Weight,
}

impl MultiGpuState {
    /// Build the shards and upload the graph to each device once.
    pub fn new(graph: &Csr, config: &MultiGpuConfig) -> Self {
        let n = graph.num_vertices() as u32;
        assert!(config.num_devices >= 1);
        let k = config.num_devices as u32;
        let delta = config.delta0.unwrap_or_else(|| default_delta(graph));
        let chunk = n.div_ceil(k);
        let shards: Vec<Shard> = (0..k)
            .map(|d| {
                let mut device = Device::new(config.device.clone());
                // One command stream per shard device: kernel reports
                // and sanitizer violations carry the shard id.
                device.set_stream(d);
                let gb = GraphBuffers::upload(&mut device, graph);
                let frontier = DeviceQueue::new(&mut device, "mg_frontier", n);
                let updates = DeviceQueue::new(&mut device, "mg_updates", n);
                let dirty = device.alloc("mg_dirty", n as usize);
                let pending = device.alloc("mg_pending", n as usize);
                Shard {
                    device,
                    gb,
                    frontier,
                    updates,
                    dirty,
                    pending,
                    lo: d * chunk,
                    hi: ((d + 1) * chunk).min(n),
                    mark: 0.0,
                }
            })
            .collect();
        Self { shards, config: config.clone(), n, chunk, delta }
    }

    /// Arm a fault plan on shard 0 (device-level models corrupt that
    /// shard's kernels; message models mutate every exchange batch).
    pub fn arm_faults(&mut self, spec: FaultSpec) {
        self.shards[0].device.arm_faults(FaultPlan::new(spec));
    }

    /// Disarm shard 0's fault plan, returning it (for recovery
    /// reports).
    pub fn disarm_faults(&mut self) -> Option<FaultPlan> {
        self.shards[0].device.disarm_faults()
    }

    /// Arm the memory-model sanitizer on every shard (races span the
    /// per-shard persistent kernels, so all devices watch).
    pub fn arm_sanitizer(&mut self, config: SanConfig) {
        for s in &mut self.shards {
            s.device.arm_sanitizer(config);
        }
    }

    /// Sanitizer violations across all shards as `(shard, violation)`
    /// rows, in shard order.
    pub fn san_violations(&self) -> Vec<(usize, SanViolation)> {
        let mut rows = Vec::new();
        for (i, s) in self.shards.iter().enumerate() {
            rows.extend(s.device.san_violations().iter().map(|v| (i, v.clone())));
        }
        rows
    }

    /// Total sanitizer violations across all shards.
    pub fn san_total(&self) -> u64 {
        self.shards.iter().map(|s| s.device.san_total()).sum()
    }

    /// Arm the access-IR recorder on every shard (the static verifier
    /// merges the per-device IRs into one analysis).
    pub fn arm_ir(&mut self) {
        for s in &mut self.shards {
            s.device.arm_ir();
        }
    }

    /// Take the retained access IR from every shard, in shard order,
    /// disarming the recorders. Empty when never armed.
    pub fn take_irs(&mut self) -> Vec<rdbs_gpu_sim::AccessIr> {
        self.shards.iter_mut().filter_map(|s| s.device.take_ir()).collect()
    }

    /// Total host→device uploads across all shards so far (the
    /// amortization counter: constant across [`MultiGpuState::run`]s).
    pub fn graph_uploads(&self) -> u64 {
        self.shards.iter().map(|s| s.device.counters().h2d_uploads).sum()
    }

    /// Reset per-query state in place and seed `source`'s owner.
    fn reset(&mut self, source: VertexId) {
        for s in &mut self.shards {
            s.gb.reset_dist(&mut s.device, source);
            s.frontier.reset(&mut s.device);
            s.updates.reset(&mut s.device);
            s.device.fill(s.dirty, 0);
            s.device.fill(s.pending, 0);
            s.device.charge_kernel_launch(); // persistent phase-1 kernel
            s.mark = s.device.elapsed_ms();
        }
        let owner = (source / self.chunk) as usize;
        let s = &mut self.shards[owner];
        let frontier = s.frontier;
        let pending = s.pending;
        frontier.host_push(&mut s.device, source);
        s.device.write_word(pending, source as usize, 1);
    }

    /// Answer one query against the resident shards. Panics on a
    /// detected device-queue overflow (which the recovery ladder,
    /// [`crate::recover`], treats as a detection) — use
    /// [`MultiGpuState::try_run`] for the typed error.
    pub fn run(&mut self, source: VertexId) -> MultiGpuRun {
        self.try_run(source).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Answer one query; `Err` on a detected device-queue overflow.
    pub fn try_run(&mut self, source: VertexId) -> Result<MultiGpuRun, QueueOverflow> {
        let n = self.n;
        assert!(source < n, "source out of range");
        self.reset(source);
        let (config, chunk, delta) = (self.config.clone(), self.chunk, self.delta);
        let shards = &mut self.shards;
        let checks = Cell::new(0u64);
        let total_updates = Cell::new(0u64);
        let mut elapsed_ms = 0.0f64;
        let mut exchange_ms = 0.0f64;
        let mut exchanged_bytes = 0u64;
        let mut supersteps = 0u32;
        let mut buckets = 0u32;

        let mut win_lo: u64 = 0;
        loop {
            let win_hi = win_lo + delta as u64;
            buckets += 1;

            // ---- Phase 1: light edges, inner exchange loop ----
            loop {
                let mut any = false;
                let mut step_max = 0.0f64;
                let mut all_improved: Vec<(VertexId, Dist)> = Vec::new();
                for s in shards.iter_mut() {
                    let items = s.frontier.drain(&mut s.device);
                    if items.is_empty() {
                        s.step_time();
                        continue;
                    }
                    any = true;
                    relax_wave(s, &items, win_lo, win_hi, delta, true, &checks, &total_updates);
                    step_max = step_max.max(s.step_time());
                    collect_updates(s, &mut all_improved);
                }
                if !any {
                    break;
                }
                supersteps += 1;
                elapsed_ms += step_max;
                exchange(
                    shards,
                    &mut all_improved,
                    &config,
                    &mut exchange_ms,
                    &mut exchanged_bytes,
                );
                // Owners enqueue in-window improved vertices.
                seed_owners(shards, &all_improved, win_lo, win_hi, chunk);
            }

            // ---- Phase 2: heavy edges over owned settled ranges ----
            let mut step_max = 0.0f64;
            let mut all_improved: Vec<(VertexId, Dist)> = Vec::new();
            for s in shards.iter_mut() {
                let owned: Vec<VertexId> = (s.lo..s.hi)
                    .filter(|&v| {
                        let d = s.device.read_word(s.gb.dist, v as usize) as u64;
                        d >= win_lo && d < win_hi
                    })
                    .collect();
                if !owned.is_empty() {
                    relax_wave(s, &owned, win_lo, win_hi, delta, false, &checks, &total_updates);
                    collect_updates(s, &mut all_improved);
                }
                step_max = step_max.max(s.step_time());
            }
            supersteps += 1;
            elapsed_ms += step_max;
            exchange(shards, &mut all_improved, &config, &mut exchange_ms, &mut exchanged_bytes);

            // Surface queue overflows (sticky cells survive the drains)
            // before trusting this bucket's output.
            check_shard_queues(shards)?;

            // ---- Phase 3: next window (host-coordinated jump) ----
            let dist0 = &shards[0].device.read(shards[0].gb.dist)[..n as usize];
            let mut next_active = false;
            let mut min_beyond = INF as u64;
            for &d in dist0 {
                let du = d as u64;
                if d != INF && du >= win_hi {
                    if du < win_hi + delta as u64 {
                        next_active = true;
                    } else {
                        min_beyond = min_beyond.min(du);
                    }
                }
            }
            let next_lo = if next_active {
                win_hi
            } else if min_beyond != INF as u64 {
                min_beyond
            } else {
                break; // converged everywhere
            };
            let next_hi = next_lo + delta as u64;
            // Seed owners with the next window's active vertices.
            let seeds: Vec<(VertexId, Dist)> = dist0
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d != INF && (d as u64) >= next_lo && (d as u64) < next_hi)
                .map(|(v, &d)| (v as VertexId, d))
                .collect();
            seed_owners(shards, &seeds, next_lo, next_hi, chunk);
            win_lo = next_lo;
        }

        let dist = shards[0].device.read(shards[0].gb.dist)[..n as usize].to_vec();
        let stats = UpdateStats {
            checks: checks.get(),
            total_updates: total_updates.get(),
            ..Default::default()
        };
        // Snapshot the armed plan's log (cumulative while armed — the
        // one-shot wrappers arm per run, so this matches their run).
        let dev0 = &shards[0].device;
        let fault_events = dev0.fault_log().to_vec();
        let fault_injections = dev0.fault_injections();
        Ok(MultiGpuRun {
            result: SsspResult { source, dist, stats },
            elapsed_ms: elapsed_ms + exchange_ms,
            exchange_ms,
            exchanged_bytes,
            supersteps,
            buckets,
            fault_events,
            fault_injections,
        })
    }
}

/// Run the multi-GPU bucketed SSSP (one-shot: builds a fresh
/// [`MultiGpuState`], runs one query).
pub fn multi_gpu_sssp(graph: &Csr, source: VertexId, config: &MultiGpuConfig) -> MultiGpuRun {
    multi_gpu_sssp_faulted(graph, source, config, None)
}

/// [`multi_gpu_sssp`] with an optional fault plan armed on device 0:
/// device-level models corrupt that shard's kernels, and the message
/// models (lost/duplicated/reordered) mutate every boundary-exchange
/// batch before it is applied to the replicas.
pub fn multi_gpu_sssp_faulted(
    graph: &Csr,
    source: VertexId,
    config: &MultiGpuConfig,
    fault: Option<FaultSpec>,
) -> MultiGpuRun {
    let n = graph.num_vertices() as u32;
    assert!(source < n, "source out of range");
    let mut state = MultiGpuState::new(graph, config);
    if let Some(spec) = fault {
        state.arm_faults(spec);
    }
    state.run(source)
}

/// `Err` if any shard's frontier or update queue overflowed.
fn check_shard_queues(shards: &[Shard]) -> Result<(), QueueOverflow> {
    for s in shards {
        s.frontier.check(&s.device)?;
        s.updates.check(&s.device)?;
    }
    Ok(())
}

/// One relaxation wave on a shard: light (`w < delta`) or heavy
/// (`w >= delta`) edges of `items`, recording improvements.
#[allow(clippy::too_many_arguments)]
fn relax_wave(
    s: &mut Shard,
    items: &[VertexId],
    win_lo: u64,
    win_hi: u64,
    delta: Weight,
    light: bool,
    checks: &Cell<u64>,
    total_updates: &Cell<u64>,
) {
    let gb = s.gb;
    let updates = s.updates;
    let dirty = s.dirty;
    let pending = s.pending;
    let frontier = s.frontier;
    let name = if light { "mg_light" } else { "mg_heavy" };
    s.device.wave(name, items.len() as u64, 1, |lane| {
        let i = lane.tid() as usize;
        let _ = frontier.read_slot(lane, i as u32 % frontier.capacity);
        let v = items[i];
        if light {
            // Atomic: races the owner-seeding `atomic_exch(pending, 1)`
            // handshake, same as the single-device phase 1.
            lane.atomic_exch(pending, v, 0);
        }
        let dv = lane.ld_volatile(gb.dist, v);
        lane.alu(2);
        let dvu = dv as u64;
        if dvu < win_lo || dvu >= win_hi {
            return;
        }
        let start = lane.ld(gb.row, v);
        let end = lane.ld(gb.row, v + 1);
        for e in start..end {
            let w = lane.ld(gb.wt, e);
            lane.alu(1);
            if (w < delta) != light {
                continue;
            }
            let v2 = lane.ld(gb.adj, e);
            lane.alu(1);
            let nd = dv.saturating_add(w);
            checks.set(checks.get() + 1);
            let dv2 = lane.ld_volatile(gb.dist, v2);
            if nd < dv2 {
                let old = lane.atomic_min(gb.dist, v2, nd);
                if nd < old {
                    total_updates.set(total_updates.get() + 1);
                    if lane.atomic_exch(dirty, v2, 1) == 0 {
                        updates.push(lane, v2);
                    }
                }
            }
        }
    });
    // Superstep boundary: the exchange's D2H drain synchronizes the
    // device — this port is bulk-synchronous (only the single-device
    // BASYN phase 1 is barrier-free), so charge the grid barrier.
    s.device.charge_barrier();
}

/// Drain a shard's update queue into `(vertex, local distance)` pairs.
fn collect_updates(s: &mut Shard, out: &mut Vec<(VertexId, Dist)>) {
    let vs = s.updates.drain(&mut s.device);
    for v in vs {
        s.device.write_word(s.dirty, v as usize, 0);
        out.push((v, s.device.read_word(s.gb.dist, v as usize)));
    }
}

/// Broadcast improvements to every replica; charge the interconnect.
///
/// The batch is passed mutably so an armed fault plan can lose,
/// duplicate or reorder messages *before* they are applied — the
/// caller's subsequent owner-seeding then sees the same faulted batch,
/// exactly as if the interconnect had dropped the packets.
fn exchange(
    shards: &mut [Shard],
    improved: &mut Vec<(VertexId, Dist)>,
    config: &MultiGpuConfig,
    exchange_ms: &mut f64,
    exchanged_bytes: &mut u64,
) {
    if shards.len() <= 1 {
        return;
    }
    shards[0].device.fault_filter_messages(improved);
    // 8 bytes per (vertex, dist) pair, to every other device.
    let bytes = improved.len() as u64 * 8 * (shards.len() as u64 - 1);
    *exchanged_bytes += bytes;
    *exchange_ms +=
        config.exchange_latency_us / 1e3 + bytes as f64 / (config.interconnect_gbps * 1e6);
    for s in shards.iter_mut() {
        for &(v, d) in improved.iter() {
            let cur = s.device.read_word(s.gb.dist, v as usize);
            if d < cur {
                s.device.write_word(s.gb.dist, v as usize, d);
            }
        }
    }
}

/// Enqueue in-window improved vertices on their owning shard.
fn seed_owners(
    shards: &mut [Shard],
    improved: &[(VertexId, Dist)],
    win_lo: u64,
    win_hi: u64,
    chunk: u32,
) {
    for &(v, d) in improved {
        let du = d as u64;
        if du < win_lo || du >= win_hi {
            continue;
        }
        let owner = (v / chunk) as usize;
        let s = &mut shards[owner];
        // Re-read the replica value (a later exchange may have
        // improved it further) and dedup via the pending flag.
        if s.device.read_word(s.pending, v as usize) == 0 {
            s.device.write_word(s.pending, v as usize, 1);
            s.frontier.host_push(&mut s.device, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra;
    use crate::validate::check_against;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, preferential_attachment, uniform_weights};

    fn cfg(k: usize) -> MultiGpuConfig {
        MultiGpuConfig {
            num_devices: k,
            device: DeviceConfig::test_tiny(),
            interconnect_gbps: 50.0,
            exchange_latency_us: 5.0,
            delta0: None,
        }
    }

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(150, 800, seed);
        uniform_weights(&mut el, seed + 31);
        build_undirected(&el)
    }

    #[test]
    fn matches_dijkstra_for_any_device_count() {
        for seed in 0..3 {
            let g = graph(seed);
            let oracle = dijkstra(&g, 0);
            for k in [1, 2, 3, 4] {
                let run = multi_gpu_sssp(&g, 0, &cfg(k));
                check_against(&oracle.dist, &run.result.dist)
                    .unwrap_or_else(|m| panic!("seed {seed} devices {k}: {m}"));
            }
        }
    }

    #[test]
    fn powerlaw_and_cross_partition_sources() {
        let mut el = preferential_attachment(300, 4, 4);
        uniform_weights(&mut el, 5);
        let g = build_undirected(&el);
        for source in [0u32, 150, 299] {
            let oracle = dijkstra(&g, source);
            let run = multi_gpu_sssp(&g, source, &cfg(3));
            check_against(&oracle.dist, &run.result.dist)
                .unwrap_or_else(|m| panic!("source {source}: {m}"));
        }
    }

    #[test]
    fn exchange_accounting() {
        let g = graph(7);
        let single = multi_gpu_sssp(&g, 0, &cfg(1));
        assert_eq!(single.exchanged_bytes, 0, "single device moves nothing");
        assert_eq!(single.exchange_ms, 0.0);
        let dual = multi_gpu_sssp(&g, 0, &cfg(2));
        assert!(dual.exchanged_bytes > 0);
        assert!(dual.exchange_ms > 0.0);
        assert!(dual.supersteps >= dual.buckets);
        // Same answer regardless.
        assert_eq!(single.result.dist, dual.result.dist);
    }

    #[test]
    fn disconnected_graph_terminates() {
        let el = EdgeList::from_edges(6, vec![(0, 1, 3), (4, 5, 2)]);
        let g = build_undirected(&el);
        let run = multi_gpu_sssp(&g, 0, &cfg(2));
        assert_eq!(run.result.dist[1], 3);
        assert_eq!(run.result.dist[4], INF);
    }
}
