//! GPU SSSP implementations on the simulated device.
//!
//! * [`bl::bl`] — the paper's synchronous push-mode baseline;
//! * [`rdbs::rdbs`] — the paper's contribution with per-optimization
//!   toggles ([`rdbs::RdbsConfig`]);
//! * [`run_gpu`] — one-call runner: preprocesses (PRO) if requested,
//!   builds the device, runs, maps distances back to original vertex
//!   ids and packages time/counters/GTEPS.

pub mod bl;
pub mod buffers;
pub mod frontier;
pub mod multi;
pub mod rdbs;

pub use bl::{bl, bl_on, BlScratch};
pub use buffers::{DeviceQueue, GraphArrays, GraphBuffers, QueueOverflow};
pub use frontier::{FrontierKind, ScatterMode};
pub use multi::{
    multi_gpu_sssp, multi_gpu_sssp_faulted, MultiGpuConfig, MultiGpuRun, MultiGpuState,
};
pub use rdbs::{rdbs_on, GpuBucketTrace, MonotonicityViolation, RdbsConfig, RdbsRun, RdbsScratch};

use crate::stats::SsspResult;
use crate::{default_delta, Csr, VertexId};
use rdbs_gpu_sim::{Counters, Device, DeviceConfig};

/// Which GPU implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The synchronous push baseline (BL).
    Baseline,
    /// RDBS or one of its ablations.
    Rdbs(RdbsConfig),
}

impl Variant {
    /// Legend label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            Variant::Baseline => "BL".into(),
            Variant::Rdbs(cfg) => cfg.label(),
        }
    }

    /// The paper's four Fig. 8 series: BL and the three ablations.
    pub fn fig8_variants() -> Vec<Variant> {
        vec![
            Variant::Baseline,
            Variant::Rdbs(RdbsConfig::basyn_pro()),
            Variant::Rdbs(RdbsConfig::basyn_adwl()),
            Variant::Rdbs(RdbsConfig::full()),
        ]
    }
}

/// Everything one GPU run produces.
pub struct GpuRun {
    /// Variant legend label.
    pub label: String,
    /// Result with distances in the caller's (original) vertex ids.
    pub result: SsspResult,
    /// Simulated kernel time, milliseconds.
    pub elapsed_ms: f64,
    /// nvprof-style counters.
    pub counters: Counters,
    /// Per-bucket trace (empty for the baseline).
    pub buckets: Vec<GpuBucketTrace>,
    /// Giga-traversed-edges per second: `m / time` (§5.1.3).
    pub gteps: f64,
    /// Monotonicity audit hits (RDBS variants on a fault-armed device
    /// only; always empty otherwise).
    pub audit: Vec<MonotonicityViolation>,
}

/// Run `variant` from `source` on a fresh device of `device_config`.
///
/// PRO preprocessing (when the variant asks for it) happens host-side
/// and — matching the paper, which treats reordering as a
/// preprocessing stage — is *not* charged against the kernel time.
pub fn run_gpu(
    graph: &Csr,
    source: VertexId,
    variant: Variant,
    device_config: DeviceConfig,
) -> GpuRun {
    let mut device = Device::new(device_config);
    run_gpu_on(&mut device, graph, source, variant)
}

/// Like [`run_gpu`] but on a caller-prepared device — the fault
/// injection and recovery layer ([`crate::recover`]) uses this to run
/// on a device with a fault plan armed. The device should be fresh
/// (or stats-reset): elapsed time is read off the device afterwards.
pub fn run_gpu_on(device: &mut Device, graph: &Csr, source: VertexId, variant: Variant) -> GpuRun {
    let (result, buckets, audit) = match variant {
        Variant::Baseline => (bl(device, graph, source), Vec::new(), Vec::new()),
        Variant::Rdbs(cfg) => {
            if cfg.pro {
                let delta0 = cfg.delta0.unwrap_or_else(|| default_delta(graph));
                let (pg, perm) = rdbs_graph::reorder::pro(graph, delta0);
                let mut run = rdbs::rdbs(device, &pg, perm.new_id(source), cfg);
                run.result.dist = perm.unapply_to_array(&run.result.dist);
                run.result.source = source;
                if crate::stats::trace::armed() {
                    // Trace events carry PRO-relabelled ids; map them
                    // back like the distances.
                    let inv = perm.inverse();
                    crate::stats::trace::remap_ids(|v| inv.new_id(v));
                }
                let inv = perm.inverse();
                for hit in &mut run.audit {
                    hit.vertex = inv.new_id(hit.vertex);
                }
                (run.result, run.buckets, run.audit)
            } else {
                let run = rdbs::rdbs(device, graph, source, cfg);
                (run.result, run.buckets, run.audit)
            }
        }
    };
    let elapsed_ms = device.elapsed_ms();
    let gteps =
        if elapsed_ms > 0.0 { graph.num_edges() as f64 / (elapsed_ms * 1e-3) / 1e9 } else { 0.0 };
    GpuRun {
        label: variant.label(),
        result,
        elapsed_ms,
        counters: device.counters().clone(),
        buckets,
        gteps,
        audit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra;
    use crate::validate::check_against;
    use rdbs_graph::builder::build_undirected;
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(100, 500, seed);
        uniform_weights(&mut el, seed + 9);
        build_undirected(&el)
    }

    #[test]
    fn runner_maps_pro_results_back() {
        let g = graph(1);
        let oracle = dijkstra(&g, 5);
        for v in Variant::fig8_variants() {
            let run = run_gpu(&g, 5, v, rdbs_gpu_sim::DeviceConfig::test_tiny());
            check_against(&oracle.dist, &run.result.dist)
                .unwrap_or_else(|m| panic!("{}: {m}", run.label));
            assert!(run.elapsed_ms > 0.0);
            assert!(run.gteps > 0.0);
        }
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<String> =
            Variant::fig8_variants().iter().map(super::Variant::label).collect();
        assert_eq!(labels, vec!["BL", "BASYN+PRO", "BASYN+ADWL", "BASYN+PRO+ADWL"]);
    }

    #[test]
    fn runs_produce_consistent_metrics() {
        // Timing/counters sanity on both devices. (Performance *shape*
        // claims — RDBS vs BL — are exercised at realistic scale by the
        // fig8 bench and the integration tests, not at 100 vertices,
        // where per-bucket scans dominate and the paper's regime does
        // not apply.)
        let g = graph(3);
        for dc in [rdbs_gpu_sim::DeviceConfig::v100(), rdbs_gpu_sim::DeviceConfig::t4()] {
            let run = run_gpu(&g, 0, Variant::Rdbs(RdbsConfig::full()), dc);
            assert!(run.elapsed_ms > 0.0);
            assert!(run.counters.inst_executed > 0);
            assert!(run.counters.inst_executed_atomics > 0);
            let recomputed = g.num_edges() as f64 / (run.elapsed_ms * 1e-3) / 1e9;
            assert!((run.gteps - recomputed).abs() < 1e-12);
        }
    }
}
