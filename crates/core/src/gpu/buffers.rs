//! Device-resident graph state shared by every GPU kernel.

use crate::{Csr, Dist, VertexId, INF};
use rdbs_gpu_sim::{Buf, Device, Lane};

/// The CSR arrays plus the distance vector on the device.
///
/// `Copy` so kernel closures — including `'static` dynamic-parallelism
/// children — can capture it by value.
#[derive(Clone, Copy)]
pub struct GraphBuffers {
    pub n: u32,
    pub m: u32,
    /// Row offsets, `n + 1` words.
    pub row: Buf,
    /// Adjacency list, `m` words.
    pub adj: Buf,
    /// Edge weights, `m` words.
    pub wt: Buf,
    /// Heavy-edge offsets (`n` words) when the graph was preprocessed
    /// with property-driven reordering.
    pub heavy: Option<Buf>,
    /// Tentative distances, `n` words.
    pub dist: Buf,
}

impl GraphBuffers {
    /// Upload a graph and an all-`INF` distance vector.
    pub fn upload(device: &mut Device, graph: &Csr) -> Self {
        let n = graph.num_vertices() as u32;
        let m = graph.num_edges() as u32;
        let row = device.alloc_upload("row_offsets", graph.row_offsets());
        let adj = device.alloc_upload("adjacency", graph.adjacency());
        let wt = device.alloc_upload("weights", graph.weights());
        let heavy = graph.heavy_offsets().map(|h| device.alloc_upload("heavy_offsets", h));
        let dist = device.alloc("dist", n as usize);
        device.fill(dist, INF);
        Self { n, m, row, adj, wt, heavy, dist }
    }

    /// Set the source distance to zero (host-side init).
    pub fn init_source(&self, device: &mut Device, source: VertexId) {
        device.write_word(self.dist, source as usize, 0);
    }

    /// Copy the distance vector back to the host.
    pub fn download_dist(&self, device: &Device) -> Vec<Dist> {
        device.read(self.dist).to_vec()
    }
}

/// A device-side vertex queue: data buffer plus a tail cursor cell.
/// Kernels push with `atomicAdd` on the cursor; the host "manager
/// thread" drains and resets it between waves.
#[derive(Clone, Copy)]
pub struct DeviceQueue {
    pub data: Buf,
    pub tail: Buf,
    pub capacity: u32,
}

impl DeviceQueue {
    pub fn new(device: &mut Device, label: &'static str, capacity: u32) -> Self {
        let data = device.alloc(label, capacity as usize);
        let tail = device.alloc("queue_tail", 1);
        Self { data, tail, capacity }
    }

    /// Device-side push (kernel context): bump the tail, store `v`.
    /// Returns the slot.
    #[inline]
    pub fn push(&self, lane: &mut Lane<'_>, v: VertexId) -> u32 {
        let slot = lane.atomic_add(self.tail, 0, 1);
        debug_assert!(slot < self.capacity, "device queue overflow");
        lane.st(self.data, slot, v);
        slot
    }

    /// Host-side drain: copy out the current entries and reset the
    /// tail (the manager-thread step of §4.3).
    pub fn drain(&self, device: &mut Device) -> Vec<VertexId> {
        let len = device.read_word(self.tail, 0) as usize;
        let items = device.read(self.data)[..len].to_vec();
        device.write_word(self.tail, 0, 0);
        items
    }

    /// Host-side length peek.
    pub fn len(&self, device: &Device) -> u32 {
        device.read_word(self.tail, 0)
    }

    /// Host-side emptiness peek.
    pub fn is_empty(&self, device: &Device) -> bool {
        self.len(device) == 0
    }

    /// Host-side push (seeding the source).
    pub fn host_push(&self, device: &mut Device, v: VertexId) {
        let tail = device.read_word(self.tail, 0);
        assert!(tail < self.capacity, "device queue overflow");
        device.write_word(self.data, tail as usize, v);
        device.write_word(self.tail, 0, tail + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_gpu_sim::DeviceConfig;
    use rdbs_graph::builder::{build_undirected, EdgeList};

    #[test]
    fn upload_roundtrip() {
        let g = build_undirected(&EdgeList::from_edges(3, vec![(0, 1, 4), (1, 2, 6)]));
        let mut d = Device::new(DeviceConfig::test_tiny());
        let gb = GraphBuffers::upload(&mut d, &g);
        assert_eq!(gb.n, 3);
        assert_eq!(gb.m, 4);
        assert_eq!(d.read(gb.row), g.row_offsets());
        assert_eq!(d.read(gb.adj), g.adjacency());
        gb.init_source(&mut d, 1);
        let dist = gb.download_dist(&d);
        assert_eq!(dist, vec![INF, 0, INF]);
        assert!(gb.heavy.is_none());
    }

    #[test]
    fn heavy_offsets_uploaded_when_present() {
        let g = build_undirected(&EdgeList::from_edges(2, vec![(0, 1, 4)]));
        let (g, _) = rdbs_graph::reorder::pro(&g, 5);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let gb = GraphBuffers::upload(&mut d, &g);
        assert!(gb.heavy.is_some());
        assert_eq!(d.read(gb.heavy.unwrap()), g.heavy_offsets().unwrap());
    }

    #[test]
    fn queue_device_and_host_sides() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let q = DeviceQueue::new(&mut d, "q", 16);
        q.host_push(&mut d, 7);
        assert_eq!(q.len(&d), 1);
        // Device-side pushes from a kernel.
        d.launch("pushers", 4, |lane| {
            q.push(lane, lane.tid() as u32);
        });
        assert_eq!(q.len(&d), 5);
        let mut items = q.drain(&mut d);
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2, 3, 7]);
        assert!(q.is_empty(&d));
    }
}
