//! Device-resident graph state shared by every GPU kernel.

use crate::{Csr, Dist, VertexId, INF};
use rdbs_gpu_sim::{Buf, Device, Lane, ScatterTarget};

/// The immutable CSR arrays on the device — everything that is a
/// function of the *graph*, not of any one query. A resident service
/// uploads these once per graph generation and reuses them across
/// queries; pair with a per-query distance buffer via
/// [`GraphArrays::with_dist`].
///
/// `Copy` so kernel closures — including `'static` dynamic-parallelism
/// children — can capture it by value.
#[derive(Clone, Copy)]
pub struct GraphArrays {
    pub n: u32,
    pub m: u32,
    /// Row offsets, `n + 1` words.
    pub row: Buf,
    /// Adjacency list, `m` words.
    pub adj: Buf,
    /// Edge weights, `m` words.
    pub wt: Buf,
    /// Heavy-edge offsets (`n` words) when the graph was preprocessed
    /// with property-driven reordering.
    pub heavy: Option<Buf>,
}

impl GraphArrays {
    /// Upload the CSR arrays (3 uploads, plus heavy offsets with PRO).
    pub fn upload(device: &mut Device, graph: &Csr) -> Self {
        let n = graph.num_vertices() as u32;
        let m = graph.num_edges() as u32;
        let row = device.alloc_upload("row_offsets", graph.row_offsets());
        let adj = device.alloc_upload("adjacency", graph.adjacency());
        let wt = device.alloc_upload("weights", graph.weights());
        let heavy = graph.heavy_offsets().map(|h| device.alloc_upload("heavy_offsets", h));
        Self { n, m, row, adj, wt, heavy }
    }

    /// Pair the resident arrays with a per-query distance buffer (at
    /// least `n` words; a pooled buffer may be larger).
    pub fn with_dist(self, dist: Buf) -> GraphBuffers {
        GraphBuffers {
            n: self.n,
            m: self.m,
            row: self.row,
            adj: self.adj,
            wt: self.wt,
            heavy: self.heavy,
            dist,
        }
    }
}

/// The CSR arrays plus the distance vector on the device.
///
/// `Copy` so kernel closures — including `'static` dynamic-parallelism
/// children — can capture it by value.
#[derive(Clone, Copy)]
pub struct GraphBuffers {
    pub n: u32,
    pub m: u32,
    /// Row offsets, `n + 1` words.
    pub row: Buf,
    /// Adjacency list, `m` words.
    pub adj: Buf,
    /// Edge weights, `m` words.
    pub wt: Buf,
    /// Heavy-edge offsets (`n` words) when the graph was preprocessed
    /// with property-driven reordering.
    pub heavy: Option<Buf>,
    /// Tentative distances, `n` words (pooled buffers may hold more;
    /// only the first `n` are meaningful).
    pub dist: Buf,
}

impl GraphBuffers {
    /// Upload a graph and an all-`INF` distance vector.
    pub fn upload(device: &mut Device, graph: &Csr) -> Self {
        let arrays = GraphArrays::upload(device, graph);
        let dist = device.alloc("dist", arrays.n as usize);
        device.fill(dist, INF);
        arrays.with_dist(dist)
    }

    /// Reset the distance vector for a fresh query: all `INF`, source
    /// at zero (host-side, the resident-service `reset` path).
    pub fn reset_dist(&self, device: &mut Device, source: VertexId) {
        device.fill(self.dist, INF);
        self.init_source(device, source);
    }

    /// Set the source distance to zero (host-side init).
    pub fn init_source(&self, device: &mut Device, source: VertexId) {
        device.write_word(self.dist, source as usize, 0);
    }

    /// Copy the distance vector back to the host (first `n` words —
    /// a pooled buffer may be larger than the graph).
    pub fn download_dist(&self, device: &Device) -> Vec<Dist> {
        device.read(self.dist)[..self.n as usize].to_vec()
    }
}

/// A device queue's cursor ran past its capacity: kernel-side pushes
/// were dropped (and counted), or a faulted cursor overshot. Surfaced
/// as a typed host error so release builds fail loudly instead of
/// silently losing work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueOverflow {
    /// Allocation label of the overflowed queue.
    pub queue: &'static str,
    /// Slots the queue actually holds.
    pub capacity: u32,
    /// Push slots demanded (capacity + dropped pushes), best effort.
    pub attempted: u32,
}

impl std::fmt::Display for QueueOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device queue '{}' overflow: {} pushes against capacity {}",
            self.queue, self.attempted, self.capacity
        )
    }
}

impl std::error::Error for QueueOverflow {}

/// A device-side vertex queue: data buffer, a tail cursor cell, and a
/// sticky two-word overflow record. Kernels push with `atomicAdd` on
/// the cursor; the host "manager thread" drains and resets it between
/// waves.
///
/// ## Overflow semantics
///
/// A push that lands past `capacity` is **dropped** and counted in
/// overflow word 0 — never stored out of bounds. Independently, every
/// drain that observes the cursor past `capacity` records the worst
/// overshoot in overflow word 1, whether or not drops were already
/// counted — a clamped faulted cursor after real drops (or drops after
/// a faulted cursor) must not be discarded. Both words are sticky:
/// they survive [`DeviceQueue::drain`] and are only cleared by
/// [`DeviceQueue::reset`], so the host can detect an overflow that
/// happened any time since the last reset and surface a typed
/// [`QueueOverflow`] (or hand it to the recovery ladder) instead of
/// returning a silently truncated frontier.
#[derive(Clone, Copy)]
pub struct DeviceQueue {
    pub data: Buf,
    pub tail: Buf,
    /// Sticky overflow record, 2 words: `[dropped pushes, worst
    /// drain-observed cursor overshoot]`. Only word 0 is touched from
    /// device code.
    pub overflow: Buf,
    pub capacity: u32,
    /// Allocation label, for overflow reports.
    pub label: &'static str,
}

/// Allocation length of the [`DeviceQueue::overflow`] record.
pub const OVERFLOW_WORDS: usize = 2;

impl DeviceQueue {
    pub fn new(device: &mut Device, label: &'static str, capacity: u32) -> Self {
        let data = device.alloc(label, capacity as usize);
        let tail = device.alloc("queue_tail", 1);
        let overflow = device.alloc("queue_overflow", OVERFLOW_WORDS);
        // Declare the queue to the device so the static push-bound
        // certifier can recognize its tail/overflow traffic. Owners
        // whose overshoot spills elsewhere (MLMQ) re-declare with
        // `spill = true`.
        device.declare_queue(label, tail, overflow, capacity, false);
        Self { data, tail, overflow, capacity, label }
    }

    /// Re-declare this queue as spill-capable: tail overshoot past
    /// `capacity` is routed to another queue level by the owner
    /// ([`DeviceQueue::try_push`] returning `false`), not dropped, so
    /// the static certifier classes it `Spilling`, not `Overflowing`.
    pub fn declare_spill(&self, device: &mut Device) {
        device.declare_queue(self.label, self.tail, self.overflow, self.capacity, true);
    }

    /// Device-side push (kernel context): bump the tail, store `v`.
    /// Returns the slot. On overflow the push is dropped and the
    /// sticky overflow cell incremented — checked in release builds
    /// too, so a full queue can never corrupt adjacent buffers or
    /// silently truncate.
    ///
    /// The slot store is atomic: after a host drain resets the tail,
    /// the same slot is refilled by a *different* thread of a later
    /// wave, and the only ordering between the two writers is the
    /// tail-counter handshake. Real implementations protect the slot
    /// with `st.volatile` + a threadfence; the atomic store is the
    /// simulator's sanctioned equivalent (same immediate effect).
    #[inline]
    pub fn push(&self, lane: &mut Lane<'_>, v: VertexId) -> u32 {
        let slot = lane.atomic_add(self.tail, 0, 1);
        if slot >= self.capacity {
            lane.atomic_add(self.overflow, 0, 1);
            return slot;
        }
        lane.atomic_exch(self.data, slot, v);
        slot
    }

    /// Device-side push that reports a full queue to the *caller*
    /// instead of raising the sticky overflow record: `false` means
    /// the push did not land and the caller is responsible for routing
    /// `v` somewhere else (the MLMQ spill path). The tail still
    /// overshoots — drain the queue with [`DeviceQueue::drain_lossy`],
    /// which treats the overshoot as expected.
    #[inline]
    pub fn try_push(&self, lane: &mut Lane<'_>, v: VertexId) -> bool {
        let slot = lane.atomic_add(self.tail, 0, 1);
        if slot >= self.capacity {
            return false;
        }
        lane.atomic_exch(self.data, slot, v);
        true
    }

    /// The queue as a warp-aggregated scatter target for
    /// [`Lane::gang_push`]: same tail/data/overflow cells the scalar
    /// [`DeviceQueue::push`] uses, so the two publish paths share one
    /// accounting discipline.
    #[inline]
    pub fn scatter_target(&self) -> ScatterTarget {
        ScatterTarget {
            tail: self.tail,
            data: self.data,
            capacity: self.capacity,
            overflow: self.overflow,
        }
    }

    /// Device-side read of slot `i` (kernel context). Volatile: the
    /// slot may have been written by a lane of an earlier wave of the
    /// same persistent kernel, with no grid barrier in between — a
    /// plain (snapshot-semantics) load could legitimately miss it.
    #[inline]
    pub fn read_slot(&self, lane: &mut Lane<'_>, i: u32) -> u32 {
        lane.ld_volatile(self.data, i)
    }

    /// Host-side drain: copy out the current entries and reset the
    /// tail (the manager-thread step of §4.3). The length is clamped
    /// to `capacity` — a faulted or overflowed cursor raises the
    /// sticky overflow record instead of panicking the manager thread.
    ///
    /// The overshoot is recorded *unconditionally* (word 1 keeps the
    /// worst one seen), never gated on whether drops were already
    /// counted: a clamp after a real dropped push is evidence too, and
    /// discarding it undercounts mixed drop-then-corrupt episodes.
    pub fn drain(&self, device: &mut Device) -> Vec<VertexId> {
        let tail = device.read_word(self.tail, 0);
        if tail > self.capacity {
            let overshoot = tail - self.capacity;
            let worst = device.read_word(self.overflow, 1);
            if overshoot > worst {
                device.write_word(self.overflow, 1, overshoot);
            }
        }
        let len = tail.min(self.capacity) as usize;
        let items = device.read(self.data)[..len].to_vec();
        device.write_word(self.tail, 0, 0);
        items
    }

    /// Host-side drain for queues where tail overshoot is *expected*
    /// and handled by the caller (MLMQ sub-queues route the pushes
    /// that did not land into the next level): clamp and reset without
    /// raising the overflow record. Returns the entries and the
    /// overshoot (how many pushes did not land here).
    pub fn drain_lossy(&self, device: &mut Device) -> (Vec<VertexId>, u32) {
        let tail = device.read_word(self.tail, 0);
        let spilled = tail.saturating_sub(self.capacity);
        let len = tail.min(self.capacity) as usize;
        let items = device.read(self.data)[..len].to_vec();
        device.write_word(self.tail, 0, 0);
        (items, spilled)
    }

    /// Like [`DeviceQueue::drain`], surfacing any overflow recorded
    /// since the last reset as a typed error.
    pub fn drain_checked(&self, device: &mut Device) -> Result<Vec<VertexId>, QueueOverflow> {
        let items = self.drain(device);
        self.check(device)?;
        Ok(items)
    }

    /// `Err(QueueOverflow)` if the sticky overflow record is raised.
    ///
    /// `attempted` is `capacity + max(drops, worst overshoot)`: every
    /// dropped push also bumped the tail, so a drain-observed
    /// overshoot subsumes the drops it witnessed (taking the max never
    /// double-counts a mixed corrupt-then-drop episode), while the
    /// drop count alone survives a cursor faulted back *down*.
    pub fn check(&self, device: &Device) -> Result<(), QueueOverflow> {
        let dropped = device.read_word(self.overflow, 0);
        let overshoot = device.read_word(self.overflow, 1);
        let excess = dropped.max(overshoot);
        if excess == 0 {
            return Ok(());
        }
        Err(QueueOverflow {
            queue: self.label,
            capacity: self.capacity,
            attempted: self.capacity.saturating_add(excess),
        })
    }

    /// Whether the sticky overflow record is raised.
    pub fn overflowed(&self, device: &Device) -> bool {
        device.read_word(self.overflow, 0) != 0 || device.read_word(self.overflow, 1) != 0
    }

    /// Reset to an empty, non-overflowed queue (the pooled-reuse
    /// `reset` path; contents are not cleared — the cursor defines
    /// what is live).
    pub fn reset(&self, device: &mut Device) {
        device.write_word(self.tail, 0, 0);
        device.write_word(self.overflow, 0, 0);
        device.write_word(self.overflow, 1, 0);
    }

    /// Host-side length peek (clamped to capacity; the raw cursor may
    /// overshoot after an overflow).
    pub fn len(&self, device: &Device) -> u32 {
        device.read_word(self.tail, 0).min(self.capacity)
    }

    /// Host-side emptiness peek.
    pub fn is_empty(&self, device: &Device) -> bool {
        self.len(device) == 0
    }

    /// Host-side push (seeding the source).
    pub fn host_push(&self, device: &mut Device, v: VertexId) {
        let tail = device.read_word(self.tail, 0);
        assert!(tail < self.capacity, "device queue overflow");
        device.write_word(self.data, tail as usize, v);
        device.write_word(self.tail, 0, tail + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_gpu_sim::DeviceConfig;
    use rdbs_graph::builder::{build_undirected, EdgeList};

    #[test]
    fn upload_roundtrip() {
        let g = build_undirected(&EdgeList::from_edges(3, vec![(0, 1, 4), (1, 2, 6)]));
        let mut d = Device::new(DeviceConfig::test_tiny());
        let gb = GraphBuffers::upload(&mut d, &g);
        assert_eq!(gb.n, 3);
        assert_eq!(gb.m, 4);
        assert_eq!(d.read(gb.row), g.row_offsets());
        assert_eq!(d.read(gb.adj), g.adjacency());
        gb.init_source(&mut d, 1);
        let dist = gb.download_dist(&d);
        assert_eq!(dist, vec![INF, 0, INF]);
        assert!(gb.heavy.is_none());
    }

    #[test]
    fn heavy_offsets_uploaded_when_present() {
        let g = build_undirected(&EdgeList::from_edges(2, vec![(0, 1, 4)]));
        let (g, _) = rdbs_graph::reorder::pro(&g, 5);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let gb = GraphBuffers::upload(&mut d, &g);
        assert!(gb.heavy.is_some());
        assert_eq!(d.read(gb.heavy.unwrap()), g.heavy_offsets().unwrap());
    }

    #[test]
    fn overflow_storm_errors_instead_of_corrupting() {
        // The headline release-build bug: a capacity-1 queue under a
        // 32-lane push storm must drop the excess pushes, leave the
        // neighbouring allocations untouched, and surface a typed
        // error — never store past the queue.
        let mut d = Device::new(DeviceConfig::test_tiny());
        let before = d.alloc("sentinel_before", 4);
        let q = DeviceQueue::new(&mut d, "storm_q", 1);
        let after = d.alloc("sentinel_after", 4);
        d.fill(before, 0xDEAD_BEEF);
        d.fill(after, 0xDEAD_BEEF);
        d.launch("storm", 32, |lane| {
            q.push(lane, 100 + lane.tid() as u32);
        });
        assert!(q.overflowed(&d));
        assert_eq!(d.read(before), &[0xDEAD_BEEF; 4]);
        assert_eq!(d.read(after), &[0xDEAD_BEEF; 4]);
        assert_eq!(q.len(&d), 1);
        let err = q.drain_checked(&mut d).unwrap_err();
        assert_eq!(err.queue, "storm_q");
        assert_eq!(err.capacity, 1);
        assert_eq!(err.attempted, 32);
        assert!(err.to_string().contains("overflow"));
        // Sticky across the drain; cleared only by reset.
        assert!(q.overflowed(&d));
        q.reset(&mut d);
        assert!(!q.overflowed(&d));
        assert!(q.check(&d).is_ok());
    }

    #[test]
    fn drain_clamps_faulted_cursor() {
        // A fault-corrupted tail (no recorded drops) must not panic
        // the host mid-recovery: drain clamps and raises the flag.
        let mut d = Device::new(DeviceConfig::test_tiny());
        let q = DeviceQueue::new(&mut d, "q", 4);
        q.host_push(&mut d, 9);
        d.write_word(q.tail, 0, 1000);
        let items = q.drain(&mut d);
        assert_eq!(items.len(), 4);
        assert_eq!(items[0], 9);
        assert!(q.overflowed(&d));
        assert_eq!(q.check(&d).unwrap_err().attempted, 1000);
    }

    #[test]
    fn drop_then_corrupt_keeps_the_clamp_evidence() {
        // Real dropped pushes first, then a fault overshoots the tail
        // further. The old drain gated the clamp on an untouched
        // overflow cell, so the 1000-slot overshoot was silently
        // discarded and `attempted` reported only the drops.
        let mut d = Device::new(DeviceConfig::test_tiny());
        let q = DeviceQueue::new(&mut d, "q", 1);
        d.launch("storm", 32, |lane| {
            q.push(lane, lane.tid() as u32);
        });
        d.write_word(q.tail, 0, 1000);
        let items = q.drain(&mut d);
        assert_eq!(items.len(), 1);
        // overshoot 999 subsumes the 31 drops it witnessed: the queue
        // saw 1000 slots demanded against capacity 1.
        assert_eq!(q.check(&d).unwrap_err().attempted, 1000);
    }

    #[test]
    fn corrupt_then_drop_counts_both() {
        // A faulted cursor first, then a real push that drops off the
        // corrupted tail. The old accounting reported capacity + 1
        // (just the drop); the overshoot recorded at drain must win.
        let mut d = Device::new(DeviceConfig::test_tiny());
        let q = DeviceQueue::new(&mut d, "q", 4);
        q.host_push(&mut d, 9);
        d.write_word(q.tail, 0, 1000);
        d.launch("late_push", 1, |lane| {
            q.push(lane, 7);
        });
        let items = q.drain(&mut d);
        assert_eq!(items.len(), 4);
        assert_eq!(items[0], 9);
        // tail reached 1001: the faulted 1000 plus the dropped push.
        assert_eq!(q.check(&d).unwrap_err().attempted, 1001);
        // Sticky across the drain, cleared only by reset.
        assert!(q.overflowed(&d));
        q.reset(&mut d);
        assert!(q.check(&d).is_ok());
    }

    #[test]
    fn try_push_and_lossy_drain_do_not_raise_overflow() {
        // The spill-path primitives: a failed try_push reports to the
        // caller, and drain_lossy returns the overshoot instead of
        // recording it — the queue stays clean for `check`.
        let mut d = Device::new(DeviceConfig::test_tiny());
        let q = DeviceQueue::new(&mut d, "q", 2);
        let landed = d.alloc("landed", 8);
        d.fill(landed, 0);
        d.launch("spillers", 8, |lane| {
            let ok = q.try_push(lane, 100 + lane.tid() as u32);
            lane.st(landed, lane.tid() as u32, ok as u32);
        });
        let landed_count: u32 = d.read(landed).iter().sum();
        assert_eq!(landed_count, 2);
        let (items, spilled) = q.drain_lossy(&mut d);
        assert_eq!(items.len(), 2);
        assert_eq!(spilled, 6);
        assert!(q.check(&d).is_ok());
        assert!(!q.overflowed(&d));
    }

    #[test]
    fn arrays_split_pairs_with_pooled_dist() {
        // GraphArrays (upload-once) + an oversized pooled dist buffer:
        // download must slice to n.
        let g = build_undirected(&EdgeList::from_edges(3, vec![(0, 1, 4), (1, 2, 6)]));
        let mut d = Device::new(DeviceConfig::test_tiny());
        let arrays = GraphArrays::upload(&mut d, &g);
        let dist = d.alloc("dist_pooled", 8); // size-class rounded past n=3
        let gb = arrays.with_dist(dist);
        gb.reset_dist(&mut d, 1);
        assert_eq!(gb.download_dist(&d), vec![INF, 0, INF]);
    }

    #[test]
    fn queue_device_and_host_sides() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let q = DeviceQueue::new(&mut d, "q", 16);
        q.host_push(&mut d, 7);
        assert_eq!(q.len(&d), 1);
        // Device-side pushes from a kernel.
        d.launch("pushers", 4, |lane| {
            q.push(lane, lane.tid() as u32);
        });
        assert_eq!(q.len(&d), 5);
        let mut items = q.drain(&mut d);
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2, 3, 7]);
        assert!(q.is_empty(&d));
    }
}
