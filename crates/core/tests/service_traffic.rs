//! Property tests for the service's open-loop traffic tier, driven
//! purely through the public `rdbs_core::service::traffic` API. The
//! three load-bearing guarantees:
//!
//! 1. **Cache exactness** — an answer served from the `(generation,
//!    source)` cache is bit-identical to a fresh device run, across
//!    graph swaps (generations).
//! 2. **Approximation honesty** — a landmark upper bound is per-vertex
//!    ≥ the true distance, and only ever arrives in the explicitly
//!    flagged [`Outcome::Approx`] variant.
//! 3. **Typed shedding** — every offered query is accounted for: the
//!    ones the tier declines surface as [`Outcome::Rejected`] with the
//!    blown prediction attached, never as a silently wrong, stale, or
//!    truncated answer.

use proptest::prelude::*;
use rdbs_core::seq::dijkstra;
use rdbs_core::service::cache::CacheConfig;
use rdbs_core::service::traffic::{
    generate_arrivals, ArrivalProcess, Outcome, SourceMix, TrafficConfig,
};
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::validate::check_against;
use rdbs_core::Csr;
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::builder::build_undirected;
use rdbs_graph::generate::{erdos_renyi, uniform_weights};

fn graph(n: usize, m: usize, seed: u64) -> Csr {
    let mut el = erdos_renyi(n, m, seed);
    uniform_weights(&mut el, seed.wrapping_mul(31) + 7);
    build_undirected(&el)
}

fn service(g: &Csr, streams: usize) -> SsspService {
    SsspService::new(g, ServiceConfig::rdbs(DeviceConfig::test_tiny()).with_streams(streams))
}

/// One cold query's simulated service time, ms — the natural unit for
/// picking arrival rates and SLOs that mean the same thing on every
/// generated graph.
fn probe_service_ms(g: &Csr) -> f64 {
    let mut s = service(g, 1);
    s.query(0);
    s.stats().per_query_sim_ms[0]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Cache hits are bit-identical to fresh answers, across
    /// generations: serve a hot-source workload, swap the graph, serve
    /// again — every exact answer (cached or not) must match a fresh
    /// service on whichever graph was resident when it was answered.
    #[test]
    fn cache_hits_are_bit_identical_across_generations(
        seed in 1u64..500,
        n in 24usize..72,
        streams in 1usize..4,
        hot in 1u32..4,
    ) {
        let g1 = graph(n, n * 4, seed);
        let g2 = graph(n, n * 4, seed.wrapping_add(1000));
        let service_ms = probe_service_ms(&g1);
        let mut cfg = TrafficConfig::poisson(
            1e3 / (4.0 * service_ms), 24, 1e9, seed,
        ).with_cache();
        cfg.sources = SourceMix::Hot { hot_sources: hot, hot_weight: 0.85 };
        let mut svc = service(&g1, streams);

        let mut fresh1 = service(&g1, 1);
        let r1 = svc.serve_open_loop(&cfg);
        prop_assert_eq!(r1.exact, r1.offered, "a 1e9 ms SLO never sheds");
        for o in &r1.outcomes {
            let Outcome::Exact { result, .. } = o else { unreachable!() };
            prop_assert_eq!(&result.dist, &fresh1.query(result.source).dist);
        }
        prop_assert!(r1.cache_hits > 0, "a {hot}-source hot set must repeat in 24 queries");

        svc.load_graph(&g2);
        let mut fresh2 = service(&g2, 1);
        let r2 = svc.serve_open_loop(&cfg);
        for o in &r2.outcomes {
            let Outcome::Exact { result, .. } = o else { unreachable!() };
            prop_assert_eq!(
                &result.dist, &fresh2.query(result.source).dist,
                "generation 2 answers must come from generation 2 state"
            );
        }
    }

    /// Approximate answers are honest: every served upper bound
    /// dominates the true distance vector and arrives flagged — no
    /// approximate bits ever ride in an `Exact` outcome.
    #[test]
    fn approx_answers_dominate_truth_and_are_flagged(
        seed in 1u64..500,
        n in 24usize..72,
    ) {
        let g = graph(n, n * 4, seed);
        let service_ms = probe_service_ms(&g);
        // Warm landmarks at trivial load, then overload with a tight
        // SLO so admission declines and serves bounds instead.
        let mut cfg = TrafficConfig::poisson(
            1e3 / (4.0 * service_ms), 6, 1e9, seed,
        ).with_cache();
        cfg.approx_on_shed = true;
        let mut svc = service(&g, 1);
        svc.serve_open_loop(&cfg);
        let mut burst = cfg.clone();
        burst.arrivals = ArrivalProcess::Poisson { qps: 25.0 * 1e3 / service_ms };
        burst.offered = 20;
        burst.slo_ms = 1.5 * service_ms;
        burst.seed = seed.wrapping_add(7);
        let report = svc.serve_open_loop(&burst);
        for o in &report.outcomes {
            match o {
                Outcome::Approx { source, upper, .. } => {
                    let truth = dijkstra(&g, *source);
                    prop_assert_eq!(upper.len(), truth.dist.len());
                    for (v, (&ub, &d)) in upper.iter().zip(&truth.dist).enumerate() {
                        prop_assert!(ub >= d, "upper[{}] = {} below true {}", v, ub, d);
                    }
                }
                Outcome::Exact { result, .. } => {
                    // Anything claiming exactness must BE exact.
                    prop_assert!(check_against(
                        &dijkstra(&g, result.source).dist, &result.dist,
                    ).is_ok());
                }
                Outcome::Rejected(_) => {}
            }
        }
    }

    /// Shed means typed: under any load, exact + approx + rejected
    /// covers every offered query, rejections carry a prediction at or
    /// past their deadline, and the service's accounting reconciles
    /// with the report.
    #[test]
    fn shedding_is_typed_and_fully_accounted(
        seed in 1u64..500,
        n in 24usize..72,
        overload in 2u32..12,
        streams in 1usize..4,
    ) {
        let g = graph(n, n * 4, seed);
        let service_ms = probe_service_ms(&g);
        let mut cfg = TrafficConfig::poisson(
            f64::from(overload) * 1e3 / service_ms,
            32,
            2.5 * service_ms,
            seed,
        );
        cfg.shed_margin = 1.25;
        let mut svc = service(&g, streams);
        let before = svc.stats();
        let report = svc.serve_open_loop(&cfg);
        let after = svc.stats();
        prop_assert!(report.check_accounting(&before, &after).is_ok(),
            "{:?}", report.check_accounting(&before, &after));
        prop_assert_eq!(report.exact + report.approx + report.shed, report.offered);
        for (o, q) in report.outcomes.iter().zip(&generate_arrivals(&cfg, g.num_vertices() as u32)) {
            match o {
                Outcome::Rejected(r) => {
                    prop_assert_eq!(r.source, q.source);
                    prop_assert!(
                        r.predicted_completion_ms > r.deadline_ms
                            || r.predicted_completion_ms >= q.deadline_ms,
                        "a rejection must carry the blown prediction"
                    );
                }
                Outcome::Exact { result, .. } => {
                    prop_assert!(check_against(
                        &dijkstra(&g, result.source).dist, &result.dist,
                    ).is_ok(), "answered queries must be exactly right");
                }
                Outcome::Approx { .. } => unreachable!("approx_on_shed is off"),
            }
        }
    }
}

/// The cache config's landmark budget is respected even when the
/// workload answers more distinct sources than the cache holds —
/// deterministic companion to the proptests above.
#[test]
fn cache_capacity_is_enforced_under_uniform_load() {
    let g = graph(64, 256, 3);
    let service_ms = probe_service_ms(&g);
    let mut cfg = TrafficConfig::poisson(1e3 / (4.0 * service_ms), 24, 1e9, 3);
    cfg.cache = Some(CacheConfig { capacity: 4, landmarks: 2 });
    let mut svc = service(&g, 2);
    let before = svc.stats();
    let report = svc.serve_open_loop(&cfg);
    let after = svc.stats();
    report.check_accounting(&before, &after).unwrap();
    assert_eq!(report.exact, report.offered);
}
