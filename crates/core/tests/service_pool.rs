//! Integration tests for the resident SSSP service, driven purely
//! through the public `rdbs_core::service` API: the buffer pool and
//! the warm-started `DeltaController` are invisible implementation
//! details, so every distance the service returns must be
//! bit-identical to the one-shot entry points, and the device-side
//! upload counters must prove the graph went up exactly once per
//! generation no matter how many sources a batch answers.

use proptest::prelude::*;
use rdbs_core::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs_core::seq::dijkstra;
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::validate::check_against;
use rdbs_core::{Csr, VertexId};
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::builder::{build_undirected, EdgeList};
use rdbs_graph::generate::{
    erdos_renyi, grid_road, preferential_attachment, rmat, uniform_weights, GridConfig, RmatConfig,
};

fn graph(n: usize, m: usize, seed: u64) -> Csr {
    let mut el = erdos_renyi(n, m, seed);
    uniform_weights(&mut el, seed.wrapping_mul(31) + 7);
    build_undirected(&el)
}

fn tiny() -> DeviceConfig {
    DeviceConfig::test_tiny()
}

fn arb_graph() -> impl Strategy<Value = Csr> {
    (8usize..96, 1u64..1_000).prop_map(|(n, seed)| graph(n, n * 4, seed))
}

/// A graph drawn from any of the generator families the suite knows —
/// uniform random, scale-free (R-MAT and preferential attachment), and
/// near-planar road grids — so family-specific frontier shapes
/// (hub-dominated, long-diameter, …) all hit the concurrent scheduler.
fn arb_family_graph() -> impl Strategy<Value = Csr> {
    let finish = |mut el: EdgeList, seed: u64| {
        uniform_weights(&mut el, seed.wrapping_mul(31) + 7);
        build_undirected(&el)
    };
    prop_oneof![
        (16usize..96, 1u64..500).prop_map(move |(n, s)| finish(erdos_renyi(n, n * 4, s), s)),
        (5u32..7, 1u64..500)
            .prop_map(move |(sc, s)| finish(rmat(RmatConfig::graph500(sc, 8), s), s)),
        (4usize..9, 4usize..9, 1u64..500)
            .prop_map(move |(r, c, s)| finish(grid_road(GridConfig::road(r, c), s), s)),
        (16usize..80, 1u64..500)
            .prop_map(move |(n, s)| finish(preferential_attachment(n, 3, s), s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The headline exactness property: a pooled batch over recycled
    /// buffers and a warm Δ-controller returns exactly the distances
    /// the one-shot entry point computes on a fresh device.
    #[test]
    fn pooled_batch_is_bit_identical_to_one_shot(g in arb_graph(), salt in 0u64..1_000) {
        let n = g.num_vertices();
        let sources: Vec<VertexId> =
            (0..6u64).map(|i| ((i.wrapping_mul(2_654_435_761) ^ salt) % n as u64) as VertexId).collect();
        let variant = Variant::Rdbs(RdbsConfig::full());
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let batched = svc.batch(&sources);
        prop_assert_eq!(svc.stats().fallbacks, 0);
        for (i, &s) in sources.iter().enumerate() {
            let one_shot = run_gpu(&g, s, variant, tiny());
            prop_assert_eq!(&batched[i].dist, &one_shot.result.dist, "source {}", s);
        }
    }

    /// Same property for the Bellman-Ford baseline backend, checked
    /// against the sequential oracle.
    #[test]
    fn baseline_batch_matches_dijkstra(g in arb_graph()) {
        let n = g.num_vertices();
        let sources: Vec<VertexId> = (0..4).map(|i| (i * 17 % n) as VertexId).collect();
        let mut svc = SsspService::new(&g, ServiceConfig::baseline(tiny()));
        for (i, r) in svc.batch(&sources).iter().enumerate() {
            let oracle = dijkstra(&g, sources[i]);
            prop_assert!(check_against(&oracle.dist, &r.dist).is_ok());
        }
    }

    /// The concurrent scheduler is an exactness-preserving throughput
    /// optimization: for the same sources, a batch spread across four
    /// command streams (per-query buffer leases, interleaved bucket
    /// execution, on-device overflow escalation) returns distances
    /// bit-identical to the sequential batch — on every generator
    /// family — and actually overlaps queries while doing so.
    #[test]
    fn concurrent_batch_is_bit_identical_to_sequential(
        g in arb_family_graph(),
        salt in 0u64..1_000,
    ) {
        let n = g.num_vertices();
        let sources: Vec<VertexId> = (0..8u64)
            .map(|i| ((i.wrapping_mul(2_654_435_761) ^ salt) % n as u64) as VertexId)
            .collect();
        let mut seq = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let sequential = seq.batch(&sources);
        let mut con = SsspService::new(&g, ServiceConfig::rdbs(tiny()).with_streams(4));
        let concurrent = con.batch(&sources);
        prop_assert_eq!(con.stats().fallbacks, 0, "concurrent batch fell back to the host");
        prop_assert!(
            con.stats().inflight_peak > 1,
            "scheduler never overlapped queries (peak {})",
            con.stats().inflight_peak
        );
        for (i, (s, c)) in sequential.iter().zip(&concurrent).enumerate() {
            prop_assert_eq!(&s.dist, &c.dist, "source {}", sources[i]);
        }
    }

    /// Re-querying the same source keeps returning the same answer:
    /// the adaptive Δ schedule drifts as the controller warms up, but
    /// Δ-stepping is exact under any schedule.
    #[test]
    fn repeated_queries_are_stable(g in arb_graph(), s in 0u32..8) {
        let source = s % g.num_vertices() as VertexId;
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let first = svc.query(source);
        for _ in 0..3 {
            prop_assert_eq!(&svc.query(source).dist, &first.dist);
        }
    }
}

/// The amortization claim, asserted on the simulator's nvprof-style
/// counters: the RDBS backend uploads row+adj+wt+heavy exactly once,
/// the baseline row+adj+wt, and the count is independent of how many
/// sources the batch answers.
#[test]
fn upload_count_is_independent_of_batch_size() {
    let g = graph(150, 700, 11);
    for (config, uploads) in
        [(ServiceConfig::rdbs(tiny()), 4), (ServiceConfig::baseline(tiny()), 3)]
    {
        for batch_size in [1usize, 4, 16] {
            let mut svc = SsspService::new(&g, config.clone());
            let sources: Vec<VertexId> = (0..batch_size as VertexId).collect();
            assert_eq!(svc.batch(&sources).len(), batch_size);
            assert_eq!(
                svc.device_uploads(),
                uploads,
                "{batch_size} sources must not change the {uploads}-array upload"
            );
            let stats = svc.stats();
            assert_eq!(stats.queries, batch_size as u64);
            assert_eq!(stats.uploads_avoided, (batch_size as u64 - 1) * uploads);
        }
    }
}

/// Swapping graphs recycles every device buffer: after the first
/// generation warms the pool, later same-sized generations allocate
/// nothing new, and queries on each generation stay oracle-correct.
#[test]
fn generations_recycle_and_stay_correct() {
    let graphs: Vec<Csr> = (0..4).map(|i| graph(100, 480, 40 + i)).collect();
    let mut svc = SsspService::new(&graphs[0], ServiceConfig::rdbs(tiny()));
    svc.batch(&[0, 31, 62]);
    let allocs_after_gen1 = svc.stats().pool_allocs;
    for g in &graphs[1..] {
        svc.load_graph(g);
        for r in svc.batch(&[0, 31, 62]) {
            let oracle = dijkstra(g, r.source);
            assert!(check_against(&oracle.dist, &r.dist).is_ok(), "source {}", r.source);
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.pool_allocs, allocs_after_gen1, "later generations allocate nothing new");
    assert!(stats.pool_reuses >= 3 * 8, "each generation swap recycles the working set");
    assert!(stats.bytes_recycled > 0);
    assert_eq!(stats.graph_uploads, 4 * 4, "four generations x four graph arrays");
}

/// The multi-GPU backend behind the same service front answers a
/// batch correctly and uploads each shard's arrays exactly once.
#[test]
fn multi_gpu_backend_serves_batches() {
    let g = graph(160, 800, 77);
    let mut svc = SsspService::new(&g, ServiceConfig::multi(2, tiny()));
    let uploads = svc.device_uploads();
    assert!(uploads > 0);
    let sources: Vec<VertexId> = vec![0, 40, 80, 120];
    for r in svc.batch(&sources) {
        let oracle = dijkstra(&g, r.source);
        assert!(check_against(&oracle.dist, &r.dist).is_ok(), "source {}", r.source);
    }
    assert_eq!(svc.device_uploads(), uploads, "batch must not re-upload shards");
}

/// A graph with a single vertex and no edges is the degenerate corner
/// every pool size-class computation has to survive.
#[test]
fn degenerate_single_vertex_graph() {
    let g = build_undirected(&EdgeList::from_edges(1, vec![]));
    let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
    let r = svc.query(0);
    assert_eq!(r.dist, vec![0]);
}
