//! Regression tests for distance-arithmetic overflow: with weights
//! near `u32::MAX`, the unchecked `du + w` the sequential kernels used
//! to perform wraps around in release builds (and panics in debug),
//! turning far vertices into spuriously *near* ones. All relaxations
//! now go through `rdbs_core::saturating_relax`, which clamps to
//! `INF` — an overflowing path degrades to "unreachable" instead of
//! corrupting finite distances.

use rdbs_core::seq::{bellman_ford, delta_stepping, dial, dijkstra};
use rdbs_core::{saturating_relax, INF};
use rdbs_graph::builder::{build_undirected, EdgeList};

const NEAR_MAX: u32 = u32::MAX - 10;

/// A path 0—1—2 whose two hops each weigh almost `u32::MAX` (their sum
/// overflows), plus a direct heavy edge 0—2 that fits. The correct
/// saturating answer: vertex 1 via the first hop, vertex 2 via the
/// direct edge, vertex 3 unreachable within `u32` arithmetic.
fn overflow_graph() -> rdbs_core::Csr {
    let el = EdgeList::from_edges(
        4,
        vec![(0, 1, NEAR_MAX), (1, 2, NEAR_MAX), (0, 2, u32::MAX - 5), (2, 3, NEAR_MAX)],
    );
    build_undirected(&el)
}

#[test]
fn helper_saturates_at_inf() {
    assert_eq!(saturating_relax(0, 7), 7);
    assert_eq!(saturating_relax(NEAR_MAX, NEAR_MAX), INF);
    assert_eq!(saturating_relax(INF, 1), INF);
    assert_eq!(saturating_relax(u32::MAX - 1, 1), u32::MAX);
}

#[test]
fn dijkstra_survives_near_max_weights() {
    let g = overflow_graph();
    let r = dijkstra(&g, 0);
    assert_eq!(r.dist[0], 0);
    assert_eq!(r.dist[1], NEAR_MAX);
    assert_eq!(r.dist[2], u32::MAX - 5);
    // dist[2] + NEAR_MAX overflows → 3 stays unreachable.
    assert_eq!(r.dist[3], INF);
}

#[test]
fn bellman_ford_survives_near_max_weights() {
    let g = overflow_graph();
    let oracle = dijkstra(&g, 0);
    assert_eq!(bellman_ford(&g, 0).dist, oracle.dist);
}

#[test]
fn delta_stepping_survives_near_max_weights() {
    let g = overflow_graph();
    let oracle = dijkstra(&g, 0);
    for delta in [1 << 28, u32::MAX] {
        assert_eq!(delta_stepping(&g, 0, delta).dist, oracle.dist, "delta {delta}");
    }
}

#[test]
fn delta_stepping_narrow_delta_allocation_is_bounded() {
    // Bucket ids reach ~u32::MAX/Δ here. The old dist/Δ-indexed bucket
    // array allocated one Vec per id — billions for Δ = 1 — where the
    // circular wheel keeps a fixed window and jumps across the empty
    // ranges; this completing at all (quickly, in bounded memory) is
    // the regression under test.
    let g = overflow_graph();
    let oracle = dijkstra(&g, 0);
    for delta in [1, 7, 1000] {
        assert_eq!(delta_stepping(&g, 0, delta).dist, oracle.dist, "delta {delta}");
    }
}

#[test]
fn dial_survives_near_max_weights() {
    // Dial's bucket id *is* the distance: the classic w_max+1 circular
    // array would be ~4 billion slots on this graph. The wheel caps the
    // window and the cursor jumps between the sparse distance values.
    let g = overflow_graph();
    let oracle = dijkstra(&g, 0);
    for s in 0..4 {
        assert_eq!(dial(&g, s).dist, dijkstra(&g, s).dist, "source {s}");
    }
    assert_eq!(dial(&g, 0).dist, oracle.dist);
}

#[test]
fn all_sources_agree_near_max() {
    // From every source, frontier Bellman-Ford must agree with the
    // heap oracle even when some relaxations saturate.
    let g = overflow_graph();
    for s in 0..4 {
        let a = dijkstra(&g, s);
        let b = bellman_ford(&g, s);
        assert_eq!(a.dist, b.dist, "source {s}");
    }
}
