//! Regression tests for distance-arithmetic overflow: with weights
//! near `u32::MAX`, the unchecked `du + w` the sequential kernels used
//! to perform wraps around in release builds (and panics in debug),
//! turning far vertices into spuriously *near* ones. All relaxations
//! now go through `rdbs_core::saturating_relax`, which clamps to
//! `INF` — an overflowing path degrades to "unreachable" instead of
//! corrupting finite distances.

use rdbs_core::seq::{bellman_ford, delta_stepping, dijkstra};
use rdbs_core::{saturating_relax, INF};
use rdbs_graph::builder::{build_undirected, EdgeList};

const NEAR_MAX: u32 = u32::MAX - 10;

/// A path 0—1—2 whose two hops each weigh almost `u32::MAX` (their sum
/// overflows), plus a direct heavy edge 0—2 that fits. The correct
/// saturating answer: vertex 1 via the first hop, vertex 2 via the
/// direct edge, vertex 3 unreachable within `u32` arithmetic.
fn overflow_graph() -> rdbs_core::Csr {
    let el = EdgeList::from_edges(
        4,
        vec![(0, 1, NEAR_MAX), (1, 2, NEAR_MAX), (0, 2, u32::MAX - 5), (2, 3, NEAR_MAX)],
    );
    build_undirected(&el)
}

#[test]
fn helper_saturates_at_inf() {
    assert_eq!(saturating_relax(0, 7), 7);
    assert_eq!(saturating_relax(NEAR_MAX, NEAR_MAX), INF);
    assert_eq!(saturating_relax(INF, 1), INF);
    assert_eq!(saturating_relax(u32::MAX - 1, 1), u32::MAX);
}

#[test]
fn dijkstra_survives_near_max_weights() {
    let g = overflow_graph();
    let r = dijkstra(&g, 0);
    assert_eq!(r.dist[0], 0);
    assert_eq!(r.dist[1], NEAR_MAX);
    assert_eq!(r.dist[2], u32::MAX - 5);
    // dist[2] + NEAR_MAX overflows → 3 stays unreachable.
    assert_eq!(r.dist[3], INF);
}

#[test]
fn bellman_ford_survives_near_max_weights() {
    let g = overflow_graph();
    let oracle = dijkstra(&g, 0);
    assert_eq!(bellman_ford(&g, 0).dist, oracle.dist);
}

#[test]
fn delta_stepping_survives_near_max_weights() {
    // Δ must be wide here: the bucket array is indexed by dist/Δ, so a
    // narrow Δ with near-MAX distances would allocate billions of
    // buckets (a separate scaling concern, not the overflow under
    // test).
    let g = overflow_graph();
    let oracle = dijkstra(&g, 0);
    for delta in [1 << 28, u32::MAX] {
        assert_eq!(delta_stepping(&g, 0, delta).dist, oracle.dist, "delta {delta}");
    }
}

#[test]
fn all_sources_agree_near_max() {
    // From every source, frontier Bellman-Ford must agree with the
    // heap oracle even when some relaxations saturate.
    let g = overflow_graph();
    for s in 0..4 {
        let a = dijkstra(&g, s);
        let b = bellman_ford(&g, s);
        assert_eq!(a.dist, b.dist, "source {s}");
    }
}
