//! Social-network analysis: power-law graphs, where RDBS shines.
//!
//! Builds a soc-Pokec-like power-law graph, computes single-source
//! shortest paths from several seed users on both the simulated GPU
//! (RDBS) and the native CPU (PQ-Δ*-style and the async bucket port),
//! and derives a closeness-centrality ranking from the distances —
//! the kind of downstream analysis the paper's intro motivates.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use rdbs::baselines::pq_delta_stepping;
use rdbs::graph::datasets::by_name;
use rdbs::sim::DeviceConfig;
use rdbs::sssp::cpu::{async_bucket_sssp, default_threads};
use rdbs::sssp::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs::sssp::{default_delta, INF};

fn main() {
    let spec = by_name("soc-PK").expect("soc-PK spec");
    let graph = spec.generate(7, 3);
    println!("soc-PK stand-in: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    let device =
        DeviceConfig::v100().with_overhead_scale(1.0 / 128.0).with_cache_scale(1.0 / 128.0);
    let seeds = [1u32, 77, 4242];
    let threads = default_threads();
    let delta = default_delta(&graph);

    println!(
        "\n{:<8} {:>14} {:>16} {:>16}",
        "seed", "GPU RDBS (ms)", "CPU PQ-D* (ms)", "CPU async (ms)"
    );
    let mut best: Vec<(u32, f64)> = Vec::new();
    for &s in &seeds {
        let gpu = run_gpu(&graph, s, Variant::Rdbs(RdbsConfig::full()), device.clone());

        let t0 = std::time::Instant::now();
        let cpu_pq = pq_delta_stepping(&graph, s, threads, None);
        let pq_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = std::time::Instant::now();
        let cpu_async = async_bucket_sssp(&graph, s, delta, threads);
        let async_ms = t0.elapsed().as_secs_f64() * 1e3;

        assert_eq!(gpu.result.dist, cpu_pq.dist, "GPU and CPU must agree");
        assert_eq!(cpu_pq.dist, cpu_async.dist);

        println!("{:<8} {:>14.3} {:>16.3} {:>16.3}", s, gpu.elapsed_ms, pq_ms, async_ms);

        // Closeness centrality of the seed: n_reached / sum(dist).
        let (sum, reached) = gpu
            .result
            .dist
            .iter()
            .filter(|&&d| d != INF && d > 0)
            .fold((0u64, 0u64), |(s, c), &d| (s + d as u64, c + 1));
        if sum > 0 {
            best.push((s, reached as f64 / sum as f64));
        }
    }

    best.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ncloseness-centrality ranking of the seed users:");
    for (rank, (seed, score)) in best.iter().enumerate() {
        println!("  #{} user {seed} (closeness {score:.6})", rank + 1);
    }
}
