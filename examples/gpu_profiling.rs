//! Using the simulator as an nvprof substitute: profile two SSSP
//! implementations side by side and inspect per-kernel reports.
//!
//! ```text
//! cargo run --release --example gpu_profiling
//! ```

use rdbs::baselines::adds;
use rdbs::graph::builder::build_undirected;
use rdbs::graph::generate::{kronecker, uniform_weights, KroneckerConfig};
use rdbs::graph::reorder;
use rdbs::sim::{Device, DeviceConfig};
use rdbs::sssp::default_delta;
use rdbs::sssp::gpu::rdbs::{rdbs, RdbsConfig};

fn main() {
    let mut el = kronecker(KroneckerConfig::new(13, 16), 9);
    uniform_weights(&mut el, 9);
    let graph = build_undirected(&el);
    let source = 5;
    println!(
        "profiling on k-n13-16: {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // --- RDBS (with PRO preprocessing) ---
    let delta0 = default_delta(&graph);
    let (pg, perm) = reorder::pro(&graph, delta0);
    let mut dev = Device::new(DeviceConfig::v100());
    let _ = rdbs(&mut dev, &pg, perm.new_id(source), RdbsConfig::full());
    print_profile("RDBS (BASYN+PRO+ADWL)", &dev);

    // --- ADDS comparator on the identical raw graph ---
    let mut dev = Device::new(DeviceConfig::v100());
    let _ = adds(&mut dev, &graph, source, delta0);
    print_profile("ADDS", &dev);
}

fn print_profile(label: &str, dev: &Device) {
    let c = dev.counters();
    println!("== {label} ==");
    println!("  simulated time            : {:.3} ms", dev.elapsed_ms());
    println!("  inst_executed             : {}", c.inst_executed);
    println!("  inst_executed_global_loads: {}", c.inst_executed_global_loads);
    println!("  inst_executed_global_stores: {}", c.inst_executed_global_stores);
    println!("  inst_executed_atomics     : {}", c.inst_executed_atomics);
    println!("  gld/gst transactions      : {} / {}", c.gld_transactions, c.gst_transactions);
    println!("  global_hit_rate           : {:.2} %", c.global_hit_rate());
    println!("  warp_execution_efficiency : {:.2} %", c.warp_execution_efficiency());
    println!("  atomic conflicts          : {}", c.atomic_conflicts);
    println!("  kernel launches (host/dev): {} / {}", c.kernel_launches, c.child_kernel_launches);
    println!("  barriers                  : {}", c.barriers);

    // Aggregate the per-kernel reports.
    let mut by_name: std::collections::BTreeMap<&str, (u64, f64)> = Default::default();
    for r in dev.reports() {
        let e = by_name.entry(r.name).or_default();
        e.0 += 1;
        e.1 += r.total_ns;
    }
    let mut rows: Vec<_> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1 .1.partial_cmp(&a.1 .1).unwrap());
    println!("  hottest kernels:");
    for (name, (count, ns)) in rows.into_iter().take(4) {
        println!("    {name:<22} x{count:<6} {:.3} ms", ns / 1e6);
    }
    println!();
}
