//! Multi-GPU scaling — the paper's future work (§7), implemented on
//! the simulator: bucketed SSSP over 1/2/4 V100s with an NVLink-class
//! interconnect model.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use rdbs::graph::datasets::kronecker_spec;
use rdbs::sssp::gpu::{multi_gpu_sssp, MultiGpuConfig};
use rdbs::sssp::seq::dijkstra;
use rdbs::sssp::validate::check_against;

fn main() {
    let g = kronecker_spec(21, 16).generate(6, 11);
    println!("k-n21-16 stand-in: {} vertices, {} edges\n", g.num_vertices(), g.num_edges());
    let source =
        rdbs::graph::stats::bfs_levels(&g, 0).iter().position(|&l| l == 0).unwrap_or(0) as u32;
    let oracle = dijkstra(&g, source);

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "devices", "time (ms)", "compute", "exchange", "bytes", "supersteps"
    );
    let mut base = None;
    for k in [1usize, 2, 4] {
        let mut cfg = MultiGpuConfig::v100s(k);
        cfg.device = cfg.device.with_overhead_scale(1.0 / 64.0).with_cache_scale(1.0 / 64.0);
        let run = multi_gpu_sssp(&g, source, &cfg);
        check_against(&oracle.dist, &run.result.dist).expect("multi-GPU result wrong");
        let compute = run.elapsed_ms - run.exchange_ms;
        println!(
            "{k:>8} {:>12.4} {:>12.4} {:>12.4} {:>12} {:>10}",
            run.elapsed_ms, compute, run.exchange_ms, run.exchanged_bytes, run.supersteps
        );
        if k == 1 {
            base = Some(run.elapsed_ms);
        } else if let Some(b) = base {
            println!("{:>8} scaling efficiency vs 1 GPU: {:.2}x", "", b / run.elapsed_ms);
        }
    }
    println!("\n(compute shrinks with the partition; the exchange is the new bottleneck —\n the classic multi-GPU SSSP trade-off the paper's future work targets)");
}
