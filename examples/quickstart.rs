//! Quickstart: build a weighted graph, run the full RDBS pipeline on a
//! simulated V100, and validate against Dijkstra.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rdbs::graph::builder::build_undirected;
use rdbs::graph::generate::{kronecker, uniform_weights, KroneckerConfig};
use rdbs::sim::DeviceConfig;
use rdbs::sssp::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs::sssp::{seq::dijkstra, validate::check_against};

fn main() {
    // 1. A Graph500-style Kronecker graph (2^14 vertices, edgefactor
    //    16) with the paper's uniform 1..=1000 weights.
    let mut edges = kronecker(KroneckerConfig::new(14, 16), 42);
    uniform_weights(&mut edges, 42);
    let graph = build_undirected(&edges);
    println!("graph: {} vertices, {} directed edges", graph.num_vertices(), graph.num_edges());

    // 2. Run the paper's full algorithm — property-driven reordering,
    //    adaptive load balancing, bucket-aware asynchronous execution —
    //    on a simulated V100.
    let source = 1;
    let run = run_gpu(&graph, source, Variant::Rdbs(RdbsConfig::full()), DeviceConfig::v100());
    println!("\nRDBS ({}) on {}:", run.label, DeviceConfig::v100().name);
    println!("  simulated kernel time : {:.3} ms", run.elapsed_ms);
    println!("  traversal rate        : {:.2} GTEPS", run.gteps);
    println!("  reached vertices      : {}", run.result.reached());
    println!("  buckets processed     : {}", run.buckets.len());
    println!("  total updates         : {}", run.result.stats.total_updates);
    println!(
        "  work ratio            : {:.2} (total/valid updates)",
        run.result.work_ratio().unwrap_or(f64::NAN)
    );

    // 3. nvprof-style counters from the simulator.
    let c = &run.counters;
    println!("\nprofile:");
    println!("  warp insts            : {}", c.inst_executed);
    println!("  global load insts     : {}", c.inst_executed_global_loads);
    println!("  atomic insts          : {}", c.inst_executed_atomics);
    println!("  global hit rate       : {:.1} %", c.global_hit_rate());
    println!("  warp exec efficiency  : {:.1} %", c.warp_execution_efficiency());

    // 4. Validate against the sequential oracle.
    let oracle = dijkstra(&graph, source);
    check_against(&oracle.dist, &run.result.dist).expect("RDBS must match Dijkstra");
    println!("\nvalidation: distances match Dijkstra exactly ✓");
}
