//! Road-network routing: the paper's adversarial workload.
//!
//! Generates a roadNet-TX-like strip mesh (near-uniform tiny degree,
//! enormous diameter), runs every GPU variant plus the ADDS comparator
//! and shows the crossover the paper reports in §5.2.2: on
//! high-diameter uniform-degree graphs the reordering/load-balancing
//! machinery cannot pay for itself and ADDS's simpler asynchronous
//! scheme is competitive.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use rdbs::baselines::run_adds;
use rdbs::graph::datasets::by_name;
use rdbs::graph::stats::graph_stats;
use rdbs::sim::DeviceConfig;
use rdbs::sssp::gpu::{run_gpu, Variant};
use rdbs::sssp::{seq::dijkstra, validate::check_against};

fn main() {
    let spec = by_name("road-TX").expect("road-TX spec");
    let graph = spec.generate(8, 7);
    let st = graph_stats(&graph);
    println!(
        "road-TX stand-in: {} vertices, {} edges, max degree {}, pseudo-diameter {}",
        st.num_vertices, st.num_edges, st.max_degree, st.pseudo_diameter
    );

    let source = 0;
    let oracle = dijkstra(&graph, source);
    let device =
        DeviceConfig::v100().with_overhead_scale(1.0 / 256.0).with_cache_scale(1.0 / 256.0);

    println!("\n{:<16} {:>12} {:>10} {:>9}", "variant", "time (ms)", "updates", "buckets");
    for variant in Variant::fig8_variants() {
        let run = run_gpu(&graph, source, variant, device.clone());
        check_against(&oracle.dist, &run.result.dist).expect("wrong distances");
        println!(
            "{:<16} {:>12.4} {:>10} {:>9}",
            run.label,
            run.elapsed_ms,
            run.result.stats.total_updates,
            run.buckets.len()
        );
    }
    let adds = run_adds(&graph, source, device);
    check_against(&oracle.dist, &adds.result.dist).expect("ADDS wrong");
    println!(
        "{:<16} {:>12.4} {:>10} {:>9}",
        "ADDS", adds.elapsed_ms, adds.result.stats.total_updates, "-"
    );
    println!(
        "\nNote the paper's observation (§5.2.2): \"for uniform-degree and high-diameter\n\
         graphs, such as road-TX, the performance of our method is not as good as ADDS\"."
    );
}
