//! Dynamic routing: maintain shortest paths on a road network while
//! edges close, reopen and change weight — the §1 "road layout
//! management" application, served by the Ramalingam–Reps-style
//! [`rdbs::sssp::dynamic::DynamicSssp`] instead of full recomputes.
//!
//! ```text
//! cargo run --release --example dynamic_routing
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rdbs::graph::datasets::by_name;
use rdbs::sssp::dynamic::DynamicSssp;
use rdbs::sssp::paths::{build_parent_tree, extract_path};
use rdbs::sssp::seq::dijkstra;
use rdbs::sssp::INF;

fn main() {
    let graph = by_name("road-TX").expect("spec").generate(9, 17);
    println!(
        "road network: {} intersections, {} road segments",
        graph.num_vertices(),
        graph.num_edges()
    );
    let n = graph.num_vertices() as u32;
    // Put the depot at a well-connected intersection.
    let depot = (0..n).max_by_key(|&v| graph.degree(v)).unwrap_or(0);
    let mut sssp = DynamicSssp::new(&graph, depot);
    let reachable = |d: &DynamicSssp| d.dist().iter().filter(|&&x| x != INF).count();
    println!("initial: {} intersections reachable from the depot\n", reachable(&sssp));

    // A day of traffic: random closures, reopenings, congestion.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut closed: Vec<(u32, u32, u32)> = Vec::new();
    let t0 = std::time::Instant::now();
    let mut events = 0;
    for _ in 0..300 {
        let u = rng.gen_range(0..n);
        match rng.gen_range(0..3) {
            0 => {
                // Close a random segment at u.
                if let Some((v, w)) = graph.edges(u).next() {
                    sssp.delete_edge(u, v);
                    closed.push((u, v, w));
                    events += 1;
                }
            }
            1 => {
                // Reopen the oldest closure.
                if let Some((a, b, w)) = closed.pop() {
                    sssp.insert_or_decrease(a, b, w);
                    events += 1;
                }
            }
            _ => {
                // Congestion: double a segment's weight.
                if let Some((v, w)) = graph.edges(u).next() {
                    sssp.increase_weight(u, v, w.saturating_mul(2).min(1000));
                    events += 1;
                }
            }
        }
    }
    let dt = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "processed {events} network events in {dt:.1} ms ({:.3} ms/event)",
        dt / events as f64
    );
    println!("now reachable: {}", reachable(&sssp));

    // Validate against a fresh Dijkstra on the mutated network.
    let current = sssp.to_csr();
    let oracle = dijkstra(&current, depot);
    assert_eq!(sssp.dist(), &oracle.dist[..], "incremental state must match recompute");
    println!("validation: incremental distances match a full recompute ✓");

    // Route to the farthest reachable intersection.
    let far = (0..n)
        .filter(|&v| sssp.dist()[v as usize] != INF)
        .max_by_key(|&v| sssp.dist()[v as usize])
        .unwrap();
    let parents = build_parent_tree(&current, depot, sssp.dist());
    let path = extract_path(&parents, depot, far).unwrap();
    println!(
        "\nfarthest delivery: intersection {far}, distance {}, {} hops",
        sssp.dist()[far as usize],
        path.len() - 1
    );
}
