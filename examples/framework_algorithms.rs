//! The Gunrock-style framework in action: BFS, SSSP, connected
//! components and PageRank on one social graph, all expressed through
//! the advance/filter/compute operators — plus the comparison the
//! paper's introduction makes: framework SSSP vs the dedicated RDBS
//! kernels.
//!
//! ```text
//! cargo run --release --example framework_algorithms
//! ```

use rdbs::framework::algorithms::{bfs, connected_components, pagerank, sssp, PR_SCALE};
use rdbs::graph::datasets::kronecker_spec;
use rdbs::sim::DeviceConfig;
use rdbs::sssp::gpu::{run_gpu, RdbsConfig, Variant};

fn main() {
    let spec = kronecker_spec(21, 16);
    let graph = spec.generate(7, 5);
    println!("k-n21-16 stand-in: {} vertices, {} edges\n", graph.num_vertices(), graph.num_edges());
    let device =
        || DeviceConfig::v100().with_overhead_scale(1.0 / 128.0).with_cache_scale(1.0 / 128.0);
    let source = 1;

    // BFS levels.
    let (levels, engine) = bfs(device(), &graph, source);
    let max_level = levels.iter().filter(|&&l| l != u32::MAX).max().unwrap();
    println!(
        "BFS        : depth {max_level}, {} reached, {:.4} ms simulated ({} operator calls)",
        levels.iter().filter(|&&l| l != u32::MAX).count(),
        engine.elapsed_ms(),
        engine.iterations()
    );

    // Connected components.
    let (labels, engine) = connected_components(device(), &graph);
    let mut distinct = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    println!("CC         : {} components, {:.4} ms simulated", distinct.len(), engine.elapsed_ms());

    // PageRank.
    let (ranks, engine) = pagerank(device(), &graph, 20);
    let top = (0..ranks.len()).max_by_key(|&v| ranks[v]).unwrap();
    println!(
        "PageRank   : top vertex {top} (rank {:.3}), {:.4} ms simulated",
        ranks[top] as f64 / PR_SCALE as f64,
        engine.elapsed_ms()
    );

    // Framework SSSP vs dedicated RDBS.
    let (fw, engine) = sssp(device(), &graph, source);
    let dedicated = run_gpu(&graph, source, Variant::Rdbs(RdbsConfig::full()), device());
    assert_eq!(fw.dist, dedicated.result.dist, "both must be exact");
    println!(
        "\nSSSP       : framework {:.4} ms vs dedicated RDBS {:.4} ms ({:.2}x)",
        engine.elapsed_ms(),
        dedicated.elapsed_ms,
        engine.elapsed_ms() / dedicated.elapsed_ms
    );
    println!(
        "             framework updates {} vs RDBS {}",
        fw.stats.total_updates, dedicated.result.stats.total_updates
    );
    println!("\n(the paper's §1: \"the performance of SSSP in graph processing systems is sub-optimal\")");
}
