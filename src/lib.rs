//! # RDBS — bucket-aware asynchronous SSSP on a simulated GPU
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — CSR graphs, generators (Kronecker/R-MAT, grids,
//!   power-law), IO and the property-driven reordering preprocessing.
//! * [`sim`] — the SIMT GPU simulator substrate (warps, blocks, caches,
//!   dynamic parallelism, nvprof-style counters, V100/T4 presets).
//! * [`sssp`] — the SSSP algorithms: the paper's RDBS plus the ablations
//!   (BL, BASYN, +PRO, +ADWL) and sequential/CPU-parallel references.
//! * [`baselines`] — comparators: ADDS (GPU, async Δ-stepping), PQ-Δ*
//!   (CPU, lazy-batched priority queue), Near-Far, GPU Bellman-Ford.
//! * [`conformance`] — the differential correctness harness: every
//!   implementation vs the Dijkstra oracle, with delta-debugging
//!   witness minimization and first-divergence localization
//!   (`rdbs-cli verify`).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use rdbs_baselines as baselines;
pub use rdbs_conformance as conformance;
pub use rdbs_core as sssp;
pub use rdbs_framework as framework;
pub use rdbs_gpu_sim as sim;
pub use rdbs_graph as graph;
