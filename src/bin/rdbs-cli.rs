//! `rdbs-cli` — run any SSSP implementation in the workspace on a
//! generated or loaded graph from the command line.
//!
//! ```text
//! rdbs-cli --gen kronecker:14:16 --algo rdbs --source 1
//! rdbs-cli --load graph.gr --format dimacs --algo adds --profile
//! rdbs-cli --gen dataset:soc-PK:6 --algo all --sources 4
//! rdbs-cli verify                 # full differential conformance matrix
//! rdbs-cli verify --impl gpu/full --graph kronecker
//! rdbs-cli verify --impl seq/dijkstra --witness witness.txt
//! rdbs-cli chaos                  # fault-injection matrix, no silent wrong answers
//! rdbs-cli chaos --model bit-flip --entry gpu/full --seed 3
//! rdbs-cli serve --sources 64     # resident service: one upload, many queries
//! ```

use rdbs::baselines::{adds, frontier_bf, near_far, pq_delta_stepping};
use rdbs::baselines::{rho_stepping, sep_graph};
use rdbs::graph::builder::{build_directed, build_undirected};
use rdbs::graph::generate::{
    erdos_renyi, grid_road, kronecker, preferential_attachment, uniform_weights, GridConfig,
    KroneckerConfig,
};
use rdbs::graph::{datasets, io, Csr, Dist, VertexId, INF};
use rdbs::sim::{Device, DeviceConfig};
use rdbs::sssp::cpu::{async_bucket_sssp, default_threads, parallel_delta_stepping};
use rdbs::sssp::gpu::{multi_gpu_sssp, MultiGpuConfig};
use rdbs::sssp::gpu::{run_gpu, FrontierKind, RdbsConfig, Variant};
use rdbs::sssp::seq::dial;
use rdbs::sssp::seq::{bellman_ford, delta_stepping, dijkstra};
use rdbs::sssp::{default_delta, validate};
use std::io::BufReader;
use std::process::exit;

struct Options {
    gen_spec: Option<String>,
    load_path: Option<String>,
    format: String,
    algo: String,
    source: VertexId,
    sources: usize,
    seed: u64,
    device: DeviceConfig,
    profile: bool,
    validate: bool,
    print_dist: usize,
    delta0: Option<u32>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            gen_spec: None,
            load_path: None,
            format: "edgelist".into(),
            algo: "rdbs".into(),
            source: 0,
            sources: 1,
            seed: 42,
            device: DeviceConfig::v100(),
            profile: false,
            validate: false,
            print_dist: 0,
            delta0: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: rdbs-cli [--gen SPEC | --load FILE] [options]

graph input (one of):
  --gen kronecker:SCALE:EF      Graph500 Kronecker
  --gen rmat:SCALE:EF           (same parameters, unpermuted R-MAT)
  --gen grid:ROWS:COLS          road-like mesh
  --gen powerlaw:N:M            preferential attachment
  --gen erdos:N:M               uniform random
  --gen dataset:NAME:SHIFT      Table-1 stand-in (road-TX, soc-PK, ...)
  --load FILE                   read a file (see --format)
  --format edgelist|dimacs|mtx|binary

run options:
  --algo rdbs|basyn-pro|basyn-adwl|basyn|sync-delta|bl|frontier-bf|
         adds|near-far|sep-graph|framework|multi-gpu:K|
         dijkstra|dial|bellman-ford|delta-stepping|
         cpu-parallel|cpu-async|pq-delta|rho-stepping|all
  --source V          starting vertex (default 0)
  --sources K         average over K random sources instead
  --seed S            rng seed (default 42)
  --device V100|T4    simulated GPU
  --delta0 W          bucket width override
  --profile           print nvprof-style counters (GPU algos)
  --validate          check against Dijkstra
  --print-dist N      print the first N distances"
    );
    exit(2)
}

fn parse_args() -> Options {
    let mut o = Options::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--gen" => o.gen_spec = Some(val()),
            "--load" => o.load_path = Some(val()),
            "--format" => o.format = val(),
            "--algo" => o.algo = val().to_lowercase(),
            "--source" => o.source = val().parse().unwrap_or_else(|_| usage()),
            "--sources" => o.sources = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| usage()),
            "--delta0" => o.delta0 = Some(val().parse().unwrap_or_else(|_| usage())),
            "--device" => {
                o.device = match val().to_uppercase().as_str() {
                    "V100" => DeviceConfig::v100(),
                    "T4" => DeviceConfig::t4(),
                    _ => usage(),
                }
            }
            "--profile" => o.profile = true,
            "--validate" => o.validate = true,
            "--print-dist" => o.print_dist = val().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if o.gen_spec.is_none() && o.load_path.is_none() {
        eprintln!("error: provide --gen or --load\n");
        usage();
    }
    o
}

fn build_graph(o: &Options) -> Csr {
    if let Some(spec) = &o.gen_spec {
        let parts: Vec<&str> = spec.split(':').collect();
        let num = |i: usize| -> u64 {
            parts.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
        };
        let mut el = match parts[0] {
            "kronecker" => kronecker(KroneckerConfig::new(num(1) as u32, num(2) as u32), o.seed),
            "rmat" => rdbs::graph::generate::rmat(
                rdbs::graph::generate::RmatConfig::graph500(num(1) as u32, num(2) as u32),
                o.seed,
            ),
            "grid" => grid_road(GridConfig::road(num(1) as usize, num(2) as usize), o.seed),
            "powerlaw" => preferential_attachment(num(1) as usize, num(2) as usize, o.seed),
            "erdos" => erdos_renyi(num(1) as usize, num(2) as usize, o.seed),
            "dataset" => {
                let name = parts.get(1).copied().unwrap_or_else(|| usage());
                let shift = num(2) as u32;
                let spec = if name.starts_with("k-n") {
                    datasets::kronecker_spec(21, 16)
                } else {
                    datasets::by_name(name).unwrap_or_else(|| {
                        eprintln!("unknown dataset '{name}'");
                        exit(2)
                    })
                };
                return spec.generate(shift, o.seed);
            }
            _ => usage(),
        };
        uniform_weights(&mut el, o.seed);
        build_undirected(&el)
    } else {
        let path = o.load_path.as_ref().unwrap();
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            exit(1)
        });
        let reader = BufReader::new(file);
        let result = match o.format.as_str() {
            "edgelist" => io::parse_edge_list(reader).map(|el| build_undirected(&el)),
            "dimacs" => io::parse_dimacs(reader).map(|el| build_undirected(&el)),
            "mtx" => io::parse_matrix_market(reader).map(|el| build_undirected(&el)),
            "binary" => io::read_binary_csr(reader),
            _ => usage(),
        };
        result.unwrap_or_else(|e| {
            eprintln!("failed to parse {path}: {e}");
            exit(1)
        })
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("verify") {
        verify_main(std::env::args().skip(2).collect());
    }
    if std::env::args().nth(1).as_deref() == Some("chaos") {
        chaos_main(std::env::args().skip(2).collect());
    }
    if std::env::args().nth(1).as_deref() == Some("serve") {
        serve_main(std::env::args().skip(2).collect());
    }
    if std::env::args().nth(1).as_deref() == Some("fuzz-schedules") {
        fuzz_main(std::env::args().skip(2).collect());
    }
    if std::env::args().nth(1).as_deref() == Some("sanitize") {
        sanitize_main(std::env::args().skip(2).collect());
    }
    if std::env::args().nth(1).as_deref() == Some("analyze") {
        analyze_main(std::env::args().skip(2).collect());
    }
    let o = parse_args();
    let g = build_graph(&o);
    println!(
        "graph: {} vertices, {} directed edges, max weight {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_weight()
    );
    if (o.source as usize) >= g.num_vertices() {
        eprintln!("source {} out of range", o.source);
        exit(2);
    }
    let algos: Vec<String> = if o.algo == "all" {
        [
            "rdbs",
            "bl",
            "adds",
            "near-far",
            "frontier-bf",
            "sep-graph",
            "framework",
            "dijkstra",
            "dial",
            "cpu-parallel",
            "pq-delta",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect()
    } else {
        vec![o.algo.clone()]
    };
    for algo in algos {
        run_algo(&o, &g, &algo);
    }
}

fn run_algo(o: &Options, g: &Csr, algo: &str) {
    let delta = o.delta0.unwrap_or_else(|| default_delta(g));
    let threads = default_threads();
    let s = o.source;
    let started = std::time::Instant::now();
    let gpu_variant = |cfg: RdbsConfig| Some(Variant::Rdbs(cfg));
    let variant = match algo {
        "rdbs" => gpu_variant(RdbsConfig { delta0: o.delta0, ..RdbsConfig::full() }),
        "basyn-pro" => gpu_variant(RdbsConfig { delta0: o.delta0, ..RdbsConfig::basyn_pro() }),
        "basyn-adwl" => gpu_variant(RdbsConfig { delta0: o.delta0, ..RdbsConfig::basyn_adwl() }),
        "basyn" => gpu_variant(RdbsConfig { delta0: o.delta0, ..RdbsConfig::basyn_only() }),
        "sync-delta" => gpu_variant(RdbsConfig { delta0: o.delta0, ..RdbsConfig::sync_delta() }),
        "bl" => Some(Variant::Baseline),
        _ => None,
    };

    let (dist, sim_ms, label): (Vec<Dist>, Option<f64>, String) = if let Some(v) = variant {
        let run = run_gpu(g, s, v, o.device.clone());
        if o.profile {
            let c = &run.counters;
            println!(
                "  profile[{}]: insts {} loads {} stores {} atomics {} hit {:.1}% warps-eff {:.1}%",
                run.label,
                c.inst_executed,
                c.inst_executed_global_loads,
                c.inst_executed_global_stores,
                c.inst_executed_atomics,
                c.global_hit_rate(),
                c.warp_execution_efficiency()
            );
        }
        (run.result.dist, Some(run.elapsed_ms), run.label)
    } else {
        match algo {
            "adds" => {
                let mut d = Device::new(o.device.clone());
                let r = adds(&mut d, g, s, delta);
                (r.dist, Some(d.elapsed_ms()), "ADDS".into())
            }
            "near-far" => {
                let mut d = Device::new(o.device.clone());
                let r = near_far(&mut d, g, s, delta);
                (r.dist, Some(d.elapsed_ms()), "Near-Far".into())
            }
            "frontier-bf" => {
                let mut d = Device::new(o.device.clone());
                let r = frontier_bf(&mut d, g, s);
                (r.dist, Some(d.elapsed_ms()), "Frontier-BF".into())
            }
            "sep-graph" => {
                let mut d = Device::new(o.device.clone());
                let (r, modes) = sep_graph(&mut d, g, s);
                if o.profile {
                    println!("  modes: {modes:?}");
                }
                (r.dist, Some(d.elapsed_ms()), "SEP-Graph hybrid".into())
            }
            "framework" => {
                let (r, engine) = rdbs::framework::algorithms::sssp(o.device.clone(), g, s);
                (r.dist, Some(engine.elapsed_ms()), "framework (Gunrock-style)".into())
            }
            a if a.starts_with("multi-gpu") => {
                let k: usize = a.split(':').nth(1).and_then(|x| x.parse().ok()).unwrap_or(2);
                let mut cfg = MultiGpuConfig::v100s(k);
                cfg.device = o.device.clone();
                let run = multi_gpu_sssp(g, s, &cfg);
                if o.profile {
                    println!(
                        "  multi-gpu: {} devices, {} supersteps, {:.4} ms exchange, {} bytes moved",
                        k, run.supersteps, run.exchange_ms, run.exchanged_bytes
                    );
                }
                (run.result.dist, Some(run.elapsed_ms), format!("multi-GPU x{k}"))
            }
            "dijkstra" => (dijkstra(g, s).dist, None, "Dijkstra".into()),
            "dial" => (dial(g, s).dist, None, "Dial".into()),
            "bellman-ford" => (bellman_ford(g, s).dist, None, "Bellman-Ford".into()),
            "delta-stepping" => (delta_stepping(g, s, delta).dist, None, "Δ-stepping".into()),
            "cpu-parallel" => (
                parallel_delta_stepping(g, s, delta, threads).dist,
                None,
                format!("CPU parallel Δ ({threads}t)"),
            ),
            "cpu-async" => (
                async_bucket_sssp(g, s, delta, threads).dist,
                None,
                format!("CPU async ({threads}t)"),
            ),
            "pq-delta" => {
                (pq_delta_stepping(g, s, threads, None).dist, None, format!("PQ-Δ* ({threads}t)"))
            }
            "rho-stepping" => {
                (rho_stepping(g, s, threads, 0.1).dist, None, format!("ρ-stepping ({threads}t)"))
            }
            other => {
                eprintln!("unknown algorithm '{other}'");
                exit(2);
            }
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let reached = dist.iter().filter(|&&d| d != INF).count();

    print!("{label:<22} reached {reached:>8}");
    if let Some(ms) = sim_ms {
        print!("  simulated {ms:>10.4} ms");
    }
    println!("  host {wall_ms:>9.2} ms");

    if o.validate {
        match validate::check_against(&dijkstra(g, s).dist, &dist) {
            Ok(()) => println!("  validation: OK (matches Dijkstra)"),
            Err(m) => {
                println!("  validation: FAILED — {m}");
                exit(1);
            }
        }
    }
    if o.print_dist > 0 {
        let shown: Vec<String> = dist
            .iter()
            .take(o.print_dist)
            .map(|&d| if d == INF { "INF".into() } else { d.to_string() })
            .collect();
        println!("  dist[0..{}] = [{}]", shown.len(), shown.join(", "));
    }
}

// ---------------------------------------------------------------------------
// `rdbs-cli serve` — the resident batched SSSP service.
// ---------------------------------------------------------------------------

fn serve_usage() -> ! {
    eprintln!(
        "usage: rdbs-cli serve [options]

Answer many sources against one resident graph upload through the
batched service (rdbs-core::service): graph arrays H2D once, per-query
buffers recycled from a size-class pool, Δ controller warm-started
across queries. With --streams N the batch is scheduled concurrently
across N simulated command streams (least-busy dispatch, on-device
queue escalation on overflow). Prints per-batch amortization stats and
exits non-zero if the batch needed more than one graph upload (or,
with --validate, if any query disagrees with Dijkstra).

  --sources K         sources in the batch (default 16, seeded-random;
                      with --arrivals, the number of offered queries)
  --streams N         concurrent command streams for the batch
                      (default 1 = sequential; rdbs/bl backends only)
  --gen SPEC          graph spec, as in the run mode (default
                      kronecker:12:16; erdos:1500:6000 with --quick)
  --backend rdbs|bl|multi-gpu:K
                      execution engine (default rdbs = BASYN+PRO+ADWL)
  --frontier single|wheel|mlmq
                      device frontier layout for the rdbs backend
                      (default single; mlmq spills overflow to the next
                      level instead of escalating)
  --queue-capacity N  under- (or over-) provision each lane's frontier
                      queues at N logical slots instead of the vertex
                      count (stresses escalation / the MLMQ spill path)
  --seed S            rng seed for graph and source choice (default 42)
  --device V100|T4|TINY  simulated GPU (default V100; TINY with --quick)
  --delta0 W          bucket width override
  --validate          check every query against Dijkstra
  --quick             small graph + tiny device (CI smoke job)

open-loop traffic mode (simulated-time arrivals instead of a batch;
deadline-aware EDF dispatch, admission control with typed shedding,
optional answer cache; single-GPU backends only):
  --arrivals poisson|mmpp
                      offered as a seeded arrival process over
                      simulated time
  --qps X             arrival rate (mmpp: the slow phase); default
                      auto-calibrates to ~2x the measured service rate
  --fast-qps X        mmpp fast-phase rate (default 8x --qps)
  --dwell-ms X        mmpp mean phase dwell (default 50)
  --slo-ms Y          sojourn SLO; default 4x the measured service time
  --shed-margin M     admission safety factor on predicted service
                      time (default 1.25)
  --hot K:W           draw sources from the first K vertices with
                      probability W (cache-friendly skew)
  --cache             enable the (generation, source) answer cache
  --approx-on-shed    serve flagged landmark upper bounds instead of
                      shedding when possible (implies --cache)

The traffic mode always audits its own accounting (exact + approx +
shed == offered; latency-series lengths reconcile with the stats
deltas) and exits non-zero on any inconsistency."
    );
    exit(2)
}

fn serve_main(args: Vec<String>) -> ! {
    use rdbs::sssp::service::{Backend, ServiceConfig, SsspService};
    let mut o = Options::default();
    let mut sources = 16usize;
    let mut streams = 1usize;
    let mut backend_spec = "rdbs".to_string();
    let mut frontier: Option<FrontierKind> = None;
    let mut queue_capacity: Option<u32> = None;
    let mut quick = false;
    let mut device_flag: Option<String> = None;
    let mut arrivals: Option<String> = None;
    let mut qps: Option<f64> = None;
    let mut fast_qps: Option<f64> = None;
    let mut dwell_ms = 50.0f64;
    let mut slo_ms: Option<f64> = None;
    let mut shed_margin = 1.25f64;
    let mut hot: Option<(u32, f64)> = None;
    let mut use_cache = false;
    let mut approx_on_shed = false;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| serve_usage());
        match flag.as_str() {
            "--sources" => sources = val().parse().unwrap_or_else(|_| serve_usage()),
            "--streams" => streams = val().parse().unwrap_or_else(|_| serve_usage()),
            "--gen" => o.gen_spec = Some(val()),
            "--backend" => backend_spec = val().to_lowercase(),
            "--frontier" => {
                frontier = Some(FrontierKind::parse(&val()).unwrap_or_else(|| serve_usage()));
            }
            "--queue-capacity" => {
                queue_capacity = Some(val().parse().unwrap_or_else(|_| serve_usage()));
                if queue_capacity == Some(0) {
                    serve_usage();
                }
            }
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| serve_usage()),
            "--device" => device_flag = Some(val()),
            "--delta0" => o.delta0 = Some(val().parse().unwrap_or_else(|_| serve_usage())),
            "--validate" => o.validate = true,
            "--quick" => quick = true,
            "--arrivals" => arrivals = Some(val().to_lowercase()),
            "--qps" => qps = Some(val().parse().unwrap_or_else(|_| serve_usage())),
            "--fast-qps" => fast_qps = Some(val().parse().unwrap_or_else(|_| serve_usage())),
            "--dwell-ms" => dwell_ms = val().parse().unwrap_or_else(|_| serve_usage()),
            "--slo-ms" => slo_ms = Some(val().parse().unwrap_or_else(|_| serve_usage())),
            "--shed-margin" => shed_margin = val().parse().unwrap_or_else(|_| serve_usage()),
            "--hot" => {
                let spec = val();
                let mut parts = spec.split(':');
                let k = parts.next().and_then(|s| s.parse().ok());
                let w = parts.next().and_then(|s| s.parse().ok());
                match (k, w) {
                    (Some(k), Some(w)) => hot = Some((k, w)),
                    _ => serve_usage(),
                }
            }
            "--cache" => use_cache = true,
            "--approx-on-shed" => {
                approx_on_shed = true;
                use_cache = true;
            }
            "--help" | "-h" => serve_usage(),
            _ => serve_usage(),
        }
    }
    o.device = match device_flag.as_deref().map(str::to_uppercase).as_deref() {
        Some("V100") => DeviceConfig::v100(),
        Some("T4") => DeviceConfig::t4(),
        Some("TINY") => DeviceConfig::test_tiny(),
        Some(_) => serve_usage(),
        None if quick => DeviceConfig::test_tiny(),
        None => DeviceConfig::v100(),
    };
    if o.gen_spec.is_none() {
        o.gen_spec = Some(if quick { "erdos:1500:6000".into() } else { "kronecker:12:16".into() });
    }
    let g = build_graph(&o);
    let n = g.num_vertices();
    println!("graph: {} vertices, {} directed edges", n, g.num_edges());

    let backend = match backend_spec.as_str() {
        "rdbs" => {
            Backend::Gpu(Variant::Rdbs(RdbsConfig { delta0: o.delta0, ..RdbsConfig::full() }))
        }
        "bl" => Backend::Gpu(Variant::Baseline),
        b if b.starts_with("multi-gpu") => {
            let k: usize = b.split(':').nth(1).and_then(|x| x.parse().ok()).unwrap_or(2);
            Backend::MultiGpu(k)
        }
        _ => serve_usage(),
    };
    if streams == 0 {
        serve_usage();
    }
    let mut config = ServiceConfig {
        backend,
        device: o.device.clone(),
        delta0: o.delta0,
        streams,
        queue_capacity,
    };
    if let Some(kind) = frontier {
        if !matches!(config.backend, Backend::Gpu(Variant::Rdbs(_))) {
            eprintln!("error: --frontier only applies to the rdbs backend\n");
            serve_usage();
        }
        config = config.with_frontier(kind);
    }

    let built = std::time::Instant::now();
    let mut service = SsspService::new(&g, config);
    let uploads_per_graph = service.device_uploads();
    println!(
        "service: backend {backend_spec}, resident in {:.1} ms ({uploads_per_graph} uploads)",
        built.elapsed().as_secs_f64() * 1e3
    );

    // Open-loop traffic mode: seeded simulated-time arrivals with
    // deadline-aware dispatch and admission control, instead of a
    // closed-loop batch.
    if let Some(kind) = arrivals {
        use rdbs::sssp::service::traffic::{ArrivalProcess, Outcome, SourceMix, TrafficConfig};
        if matches!(backend, Backend::MultiGpu(_)) {
            eprintln!("error: --arrivals requires a single-GPU backend (rdbs or bl)\n");
            serve_usage();
        }
        // Calibrate rate/SLO defaults from one probe query's measured
        // service time so the workload stresses admission regardless
        // of graph or device scale.
        let _ = service.query((o.seed % n as u64) as VertexId);
        let service_ms = *service
            .stats()
            .per_query_sim_ms
            .last()
            .expect("the probe query records a service time");
        let qps = qps.unwrap_or(2.0 * streams as f64 * 1e3 / service_ms);
        let slo_ms = slo_ms.unwrap_or(4.0 * service_ms);
        let arrivals = match kind.as_str() {
            "poisson" => ArrivalProcess::Poisson { qps },
            "mmpp" => ArrivalProcess::Mmpp {
                slow_qps: qps,
                fast_qps: fast_qps.unwrap_or(8.0 * qps),
                mean_dwell_ms: dwell_ms,
            },
            _ => serve_usage(),
        };
        let cfg = TrafficConfig {
            arrivals,
            offered: sources,
            seed: o.seed,
            slo_ms,
            tight_slo_ms: None,
            tight_every: 0,
            sources: match hot {
                Some((k, w)) => SourceMix::Hot { hot_sources: k, hot_weight: w },
                None => SourceMix::Uniform,
            },
            shed_margin,
            cache: use_cache.then(rdbs::sssp::service::cache::CacheConfig::default),
            approx_on_shed,
        };
        println!(
            "traffic: {kind} arrivals, {qps:.1} qps, SLO {slo_ms:.3} ms, \
             {} offered, margin {shed_margin}, cache {}",
            sources,
            if use_cache { "on" } else { "off" }
        );
        let before = service.stats();
        let report = service.serve_open_loop(&cfg);
        let after = service.stats();
        println!(
            "outcomes: {} exact ({} device, {} fallback, {} cache hits), \
             {} approx, {} shed",
            report.exact,
            report.device_answered,
            report.fallbacks,
            report.cache_hits,
            report.approx,
            report.shed
        );
        if let (Some(p50), Some(p99)) =
            (report.answered_percentile_ms(50.0), report.answered_percentile_ms(99.0))
        {
            println!(
                "answered sojourn: p50 {p50:.3} ms, p99 {p99:.3} ms ({} past deadline), \
                 makespan {:.3} ms",
                report.deadline_violations, report.makespan_ms
            );
        }
        if use_cache {
            println!("cache: hit rate {:.1}% of offered", 100.0 * report.hit_rate());
        }
        if o.validate {
            for out in &report.outcomes {
                if let Outcome::Exact { result, .. } = out {
                    if let Err(m) =
                        validate::check_against(&dijkstra(&g, result.source).dist, &result.dist)
                    {
                        println!(
                            "serve: FAILED — source {} disagrees with Dijkstra: {m}",
                            result.source
                        );
                        exit(1);
                    }
                }
            }
            println!("validation: OK — all {} exact answers match Dijkstra", report.exact);
        }
        if let Err(msg) = report.check_accounting(&before, &after) {
            println!("serve: FAILED — accounting inconsistency: {msg}");
            exit(1);
        }
        println!(
            "serve: OK — accounting consistent, {} of {} offered answered",
            report.exact + report.approx,
            report.offered
        );
        exit(0)
    }

    // Seeded source choice (splitmix64 over the vertex range).
    let picks: Vec<VertexId> = (0..sources as u64)
        .map(|i| {
            let mut x = o.seed.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((x ^ (x >> 31)) % n as u64) as VertexId
        })
        .collect();

    let results = service.batch(&picks);
    let stats = service.stats();
    for (i, r) in results.iter().enumerate().take(8) {
        let reached = r.dist.iter().filter(|&&d| d != INF).count();
        println!(
            "  query {i:>3}: source {:>8} reached {reached:>8}  host {:>8.3} ms",
            r.source, stats.per_query_ms[i]
        );
    }
    if results.len() > 8 {
        println!("  ... {} more", results.len() - 8);
    }
    println!(
        "amortization: {} uploads for {} queries ({} avoided), {} bytes recycled, \
         {} pool reuses / {} allocs, {} fallbacks",
        stats.graph_uploads,
        stats.queries,
        stats.uploads_avoided,
        stats.bytes_recycled,
        stats.pool_reuses,
        stats.pool_allocs,
        stats.fallbacks
    );
    if let Some(mean) = stats.mean_query_ms() {
        println!("mean query: {mean:.3} ms host");
    }
    println!(
        "concurrency: {} stream(s), in-flight peak {}, {} on-device escalation(s)",
        streams, stats.inflight_peak, stats.escalations
    );
    if let (Some(p50), Some(p99)) =
        (stats.sim_latency_percentile_ms(50.0), stats.sim_latency_percentile_ms(99.0))
    {
        println!(
            "sim latency: p50 {p50:.3} ms, p99 {p99:.3} ms, batch makespan {:.3} ms",
            stats.sim_batch_ms
        );
    }

    if service.device_uploads() != uploads_per_graph {
        println!(
            "serve: FAILED — the batch re-uploaded the graph ({} uploads, expected {})",
            service.device_uploads(),
            uploads_per_graph
        );
        exit(1);
    }
    if o.validate {
        for r in &results {
            if let Err(m) = validate::check_against(&dijkstra(&g, r.source).dist, &r.dist) {
                println!("serve: FAILED — source {} disagrees with Dijkstra: {m}", r.source);
                exit(1);
            }
        }
        println!("validation: OK — all {} queries match Dijkstra", results.len());
    }
    println!("serve: OK — one upload served {} queries", results.len());
    exit(0)
}

// ---------------------------------------------------------------------------
// `rdbs-cli verify` — the differential conformance matrix.
// ---------------------------------------------------------------------------

fn verify_usage() -> ! {
    eprintln!(
        "usage: rdbs-cli verify [options]

matrix mode (default): run every implementation x graph family x source
against the Dijkstra oracle; on failure, minimize a witness and localize
the first divergence. Exits non-zero on any mismatch.
  --quick             reduced sweep (two families, one source)
  --impl SUBSTR       only implementations whose id contains SUBSTR
  --graph SUBSTR      only families whose name contains SUBSTR
  --frontier single|wheel|mlmq
                      run every RDBS-backed implementation on this
                      device frontier layout
  --delta0 W          bucket-width override for the whole sweep
  --inject-fault      also run the registry's deliberate fault specimen
                      (demonstrates the shrink + localize pipeline)
  --no-shrink         report failures without minimizing
  --witness-out FILE  where to write the minimized witness
                      (default rdbs-witness.txt)

replay mode: re-run one implementation on a minimized witness file
  --witness FILE      witness produced by a previous verify run
  --impl ID           exact implementation id to replay (required)
  --delta0 W          bucket width the witness was minimized under

implementation ids:
  {ids}",
        ids = rdbs::conformance::with_faults().iter().map(|i| i.id).collect::<Vec<_>>().join(" ")
    );
    exit(2)
}

struct VerifyOptions {
    quick: bool,
    impl_filter: Option<String>,
    graph_filter: Option<String>,
    frontier: Option<FrontierKind>,
    delta0: Option<u32>,
    inject_fault: bool,
    shrink: bool,
    witness_out: String,
    witness_in: Option<String>,
}

fn parse_verify_args(args: Vec<String>) -> VerifyOptions {
    let mut o = VerifyOptions {
        quick: false,
        impl_filter: None,
        graph_filter: None,
        frontier: None,
        delta0: None,
        inject_fault: false,
        shrink: true,
        witness_out: "rdbs-witness.txt".into(),
        witness_in: None,
    };
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| verify_usage());
        match flag.as_str() {
            "--quick" => o.quick = true,
            "--impl" => o.impl_filter = Some(val()),
            "--graph" => o.graph_filter = Some(val()),
            "--frontier" => {
                o.frontier = Some(FrontierKind::parse(&val()).unwrap_or_else(|| verify_usage()));
            }
            "--delta0" => o.delta0 = Some(val().parse().unwrap_or_else(|_| verify_usage())),
            "--inject-fault" => o.inject_fault = true,
            "--no-shrink" => o.shrink = false,
            "--witness-out" => o.witness_out = val(),
            "--witness" => o.witness_in = Some(val()),
            "--help" | "-h" => verify_usage(),
            _ => verify_usage(),
        }
    }
    o
}

fn verify_main(args: Vec<String>) -> ! {
    use rdbs::conformance as conf;
    let o = parse_verify_args(args);

    // Replay mode: one implementation on one witness file.
    if let Some(path) = &o.witness_in {
        let id = o.impl_filter.as_deref().unwrap_or_else(|| {
            eprintln!("error: --witness requires --impl with an exact implementation id\n");
            verify_usage()
        });
        let imp = conf::by_id(id).unwrap_or_else(|| {
            eprintln!("error: unknown implementation '{id}'\n");
            verify_usage()
        });
        let imp = match o.frontier {
            Some(kind) => imp.with_frontier(kind),
            None => imp,
        };
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            exit(1)
        });
        let w = io::read_witness(BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("failed to parse witness {path}: {e}");
            exit(1)
        });
        let g = if w.directed { build_directed(&w.edges) } else { build_undirected(&w.edges) };
        println!(
            "witness: {} vertices, {} edges, source {}{}",
            w.edges.num_vertices,
            w.edges.edges.len(),
            w.source,
            if w.directed { ", directed" } else { "" }
        );
        match conf::localize(&imp, &g, w.source, o.delta0) {
            None => {
                println!("{id}: OK (matches Dijkstra on the witness)");
                exit(0)
            }
            Some(d) => {
                println!("{d}");
                exit(1)
            }
        }
    }

    // Matrix mode.
    let opts = conf::MatrixOptions {
        quick: o.quick,
        impl_filter: o.impl_filter.clone(),
        graph_filter: o.graph_filter.clone(),
        include_faults: o.inject_fault,
        delta0: o.delta0,
        frontier: o.frontier,
    };
    let mut current_graph = String::new();
    let mut graph_cases = 0usize;
    let mut graph_failures = 0usize;
    let report = conf::run_matrix(&opts, |_imp, graph, _source, ok| {
        if graph != current_graph {
            if !current_graph.is_empty() {
                println!("  {current_graph:<14} {graph_cases:>4} cases, {graph_failures} failures");
            }
            current_graph = graph.to_string();
            graph_cases = 0;
            graph_failures = 0;
        }
        graph_cases += 1;
        graph_failures += usize::from(!ok);
    });
    if !current_graph.is_empty() {
        println!("  {current_graph:<14} {graph_cases:>4} cases, {graph_failures} failures");
    }
    println!(
        "verify: {} implementations x {} families, {} cases, {} failures",
        report.impls_run,
        report.graphs_run,
        report.cases_run,
        report.failures.len()
    );
    if report.cases_run == 0 {
        eprintln!(
            "error: the filters matched no (implementation, graph) pairs — nothing was verified"
        );
        exit(2);
    }
    if report.is_green() {
        println!("verify: OK — every implementation matches the Dijkstra oracle");
        exit(0);
    }

    for f in &report.failures {
        println!("FAIL {} on {} from source {}: {}", f.impl_id, f.graph, f.source, f.kind);
    }

    // Minimize the first failure into a replayable witness.
    if o.shrink {
        let first = &report.failures[0];
        let imp = conf::by_id(first.impl_id).expect("failure ids come from the registry");
        let imp = match o.frontier {
            Some(kind) => imp.with_frontier(kind),
            None => imp,
        };
        let family = conf::families().into_iter().find(|g| g.name == first.graph);
        if let Some(family) = family {
            println!(
                "\nminimizing {} on {} (source {})...",
                first.impl_id, first.graph, first.source
            );
            let shrunk = conf::shrink(&imp, &family.edge_list(), first.source, o.delta0);
            let w = &shrunk.witness;
            println!(
                "minimal witness: {} vertices, {} edges, source {} ({} evaluations): {}",
                w.edges.num_vertices,
                w.edges.edges.len(),
                w.source,
                shrunk.evals,
                shrunk.failure
            );
            let file = std::fs::File::create(&o.witness_out).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", o.witness_out);
                exit(1)
            });
            io::write_witness(w, file).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", o.witness_out);
                exit(1)
            });
            println!("witness written to {}", o.witness_out);
            println!("repro: {}", shrunk.repro_command(&o.witness_out));
            let g = build_undirected(&w.edges);
            if let Some(d) = conf::localize(&imp, &g, w.source, o.delta0) {
                println!("\n{d}");
            }
        }
    }
    exit(1)
}

// ---------------------------------------------------------------------------
// `rdbs-cli chaos` — the fault-injection matrix.
// ---------------------------------------------------------------------------

fn chaos_usage() -> ! {
    eprintln!(
        "usage: rdbs-cli chaos [options]

Sweep fault models x detect-and-recover entry points x graph families,
grading each cell's final answer against the Dijkstra oracle. A cell may
be correct (clean or recovered — the ladder is reported) or explicitly
errored; a silently wrong answer fails the sweep. Exits non-zero on any
silent wrong answer. The sweep is deterministic: the same flags replay
the same fault schedules byte for byte.

  --quick             reduced sweep (quick families, two entries, seed 1)
  --model SUBSTR      only fault models whose name contains SUBSTR
  --entry SUBSTR      only entry points whose id contains SUBSTR
  --graph SUBSTR      only families whose name contains SUBSTR
  --frontier single|wheel|mlmq
                      run every RDBS-backed entry on this device
                      frontier layout (service/mlmq-spill keeps its own)
  --rate R            injection rate override (default is per-model)
  --seed N            fault seed (repeatable; default 1,2 — or 1 with --quick)
  --reports           print the recovery report for every cell, not just
                      the cells where a detector fired

adversarial mode (replaces the uniform sweep with a placement search):
  --adversarial       scout each entry's sanitizer access profile, then
                      search fault placements for the deepest recovery
                      rung at a fixed injection budget, racing an
                      equal-budget uniform baseline
  --budget N          injections per (entry, graph) per arm (default 64)
  --evals N           candidate evaluations per arm (default 12)
  --corpus-out FILE   write the replayable worst-case corpus to FILE

fault models:
  {models}

entry points:
  {entries}",
        models = rdbs::sim::FaultModel::ALL.map(|m| m.name()).join(" "),
        entries =
            rdbs::conformance::chaos_entries().iter().map(|e| e.id).collect::<Vec<_>>().join(" ")
    );
    exit(2)
}

/// A `--model` filter that matches no fault model is a typo, not an
/// empty sweep: name the valid models and bail before running anything.
fn check_model_filter(filter: &Option<String>) {
    if let Some(f) = filter {
        if !rdbs::sim::FaultModel::ALL.iter().any(|m| m.name().contains(f.as_str())) {
            eprintln!(
                "error: unknown fault model '{f}' — valid models: {}",
                rdbs::sim::FaultModel::ALL.map(|m| m.name()).join(" ")
            );
            exit(2);
        }
    }
}

fn chaos_main(args: Vec<String>) -> ! {
    use rdbs::conformance as conf;
    if args.iter().any(|a| a == "--adversarial") {
        adversary_main(args);
    }
    let mut o = conf::ChaosOptions::default();
    let mut show_all_reports = false;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| chaos_usage());
        match flag.as_str() {
            "--quick" => o.quick = true,
            "--model" => o.model_filter = Some(val()),
            "--entry" => o.entry_filter = Some(val()),
            "--graph" => o.graph_filter = Some(val()),
            "--frontier" => {
                o.frontier = Some(FrontierKind::parse(&val()).unwrap_or_else(|| chaos_usage()));
            }
            "--rate" => o.rate = Some(val().parse().unwrap_or_else(|_| chaos_usage())),
            "--seed" => o.seeds.push(val().parse().unwrap_or_else(|_| chaos_usage())),
            "--reports" => show_all_reports = true,
            "--help" | "-h" => chaos_usage(),
            _ => chaos_usage(),
        }
    }
    check_model_filter(&o.model_filter);

    // Faulted attempts are allowed to panic (the recovery layer
    // catches them and that is a graded outcome, not noise) — keep the
    // default hook from spraying backtraces over the report.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = conf::run_chaos(&o, |cell| {
        let outcome = match cell.outcome() {
            Some(oc) => oc.to_string(),
            None => "-".into(),
        };
        println!(
            "  {:<14} {:<20} {:<14} seed {:<3} {:>5} inj  {:<9} {:<10} {}",
            cell.entry_id,
            cell.model.name(),
            cell.graph,
            cell.seed,
            cell.injections(),
            if cell.detected() { "detected" } else { "quiet" },
            outcome,
            cell.verdict
        );
        if let Some(r) = &cell.report {
            if show_all_reports || cell.detected() {
                for line in r.to_string().lines() {
                    println!("      {line}");
                }
            }
        }
    });

    std::panic::set_hook(prev_hook);

    let (clean, recovered, degraded, errored, silent) = report.tally();
    println!(
        "chaos: {} cells — {clean} clean, {recovered} recovered, {degraded} degraded, \
         {errored} errored, {silent} silently wrong",
        report.cells.len()
    );
    if report.cells.is_empty() {
        eprintln!("error: the filters matched no (entry, model, graph) cells — nothing was swept");
        exit(2);
    }
    if report.is_green() {
        println!("chaos: OK — no silent wrong answers");
        exit(0);
    }
    for c in report.silent_wrong() {
        println!(
            "FAIL {} under {} on {} (source {}, seed {}, rate {}): {}",
            c.entry_id, c.model, c.graph, c.source, c.seed, c.rate, c.verdict
        );
    }
    exit(1)
}

// ---------------------------------------------------------------------------
// `rdbs-cli chaos --adversarial` — the budgeted placement search.
// ---------------------------------------------------------------------------

fn adversary_main(args: Vec<String>) -> ! {
    use rdbs::conformance as conf;
    let mut o = conf::AdversaryOptions::default();
    let mut model_filter: Option<String> = None;
    let mut corpus_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| chaos_usage());
        match flag.as_str() {
            "--adversarial" => {}
            "--quick" => o.quick = true,
            "--model" => model_filter = Some(val()),
            "--entry" => o.entry_filter = Some(val()),
            "--graph" => o.graph_filter = Some(val()),
            "--frontier" => {
                o.frontier = Some(FrontierKind::parse(&val()).unwrap_or_else(|| chaos_usage()));
            }
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| chaos_usage()),
            "--budget" => o.budget = val().parse().unwrap_or_else(|_| chaos_usage()),
            "--evals" => o.max_evals = val().parse().unwrap_or_else(|_| chaos_usage()),
            "--corpus-out" => corpus_out = Some(val()),
            "--help" | "-h" => chaos_usage(),
            _ => chaos_usage(),
        }
    }
    // The search picks its own models from the scouted profile; a
    // `--model` filter still gets the typo check so `chaos --model nope
    // --adversarial` fails the same way the uniform sweep does.
    check_model_filter(&model_filter);

    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = conf::run_adversary(&o, |run| {
        println!(
            "  {:<14} {:<14} source {:<6} {} waves, {} targets — targeted {} ({}), \
             uniform {} ({}){}",
            run.entry_id,
            run.graph,
            run.source,
            run.waves,
            run.pool_size,
            run.best_targeted,
            conf::depth_label(run.best_targeted),
            run.best_uniform,
            conf::depth_label(run.best_uniform),
            if run.silent_wrong > 0 { "  SILENT WRONG" } else { "" }
        );
    });
    std::panic::set_hook(prev_hook);

    if report.runs.is_empty() {
        eprintln!("error: the filters matched no (entry, graph) cells — nothing was searched");
        exit(2);
    }
    let corpus = conf::corpus_lines(&report);
    if let Some(path) = corpus_out {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        std::fs::write(&path, &corpus).unwrap_or_else(|e| {
            eprintln!("cannot write corpus to {path}: {e}");
            exit(1)
        });
        println!("adversary: corpus written to {path}");
    } else {
        print!("{corpus}");
    }
    let deepest = report.runs.iter().map(|r| r.best_targeted).max().unwrap_or(0);
    println!(
        "adversary: {} cells searched at budget {} — deepest rung {} ({}), targeted beat \
         uniform on {} cell(s)",
        report.runs.len(),
        o.budget,
        deepest,
        conf::depth_label(deepest),
        report.runs.iter().filter(|r| r.best_targeted > r.best_uniform).count()
    );
    if report.is_green() {
        println!("adversary: OK — no silent wrong answers under targeted placement");
        exit(0);
    }
    eprintln!("adversary: FAIL — a placement produced a silently wrong answer");
    exit(1)
}

// ---------------------------------------------------------------------------
// `rdbs-cli fuzz-schedules` — seeded lane-permutation fuzzing.
// ---------------------------------------------------------------------------

fn fuzz_usage() -> ! {
    eprintln!(
        "usage: rdbs-cli fuzz-schedules [options]

Re-execute every GPU chaos entry under seeded lane/wave interleaving
permutations with the memory-model sanitizer armed, checking each
permuted run against the Dijkstra oracle. A planted-race specimen is
re-checked under every permutation seed to prove the detector stays
alive when the schedule shifts. Exits non-zero if any permuted run is
wrong, races, or the specimen goes undetected. Deterministic in
(--seed, --perms).

  --quick             reduced sweep (quick entries x quick families)
  --entry SUBSTR      only entry points whose id contains SUBSTR
  --frontier single|wheel|mlmq
                      fuzz every RDBS-backed entry on this device
                      frontier layout
  --perms N           permutation seeds per (entry, graph) (default 32)
  --seed N            base seed the permutations derive from (default 1)",
    );
    exit(2)
}

fn fuzz_main(args: Vec<String>) -> ! {
    use rdbs::conformance as conf;
    let mut o = conf::FuzzOptions::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| fuzz_usage());
        match flag.as_str() {
            "--quick" => o.quick = true,
            "--entry" => o.entry_filter = Some(val()),
            "--frontier" => {
                o.frontier = Some(FrontierKind::parse(&val()).unwrap_or_else(|| fuzz_usage()));
            }
            "--perms" => o.perms = val().parse().unwrap_or_else(|_| fuzz_usage()),
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| fuzz_usage()),
            "--help" | "-h" => fuzz_usage(),
            _ => fuzz_usage(),
        }
    }

    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = conf::fuzz_schedules(&o, |cell| {
        if !cell.is_clean() {
            println!(
                "  {:<14} {:<14} perm {:<20} correct={} violations={} panic={:?}",
                cell.entry_id,
                cell.graph,
                cell.perm_seed,
                cell.correct,
                cell.violations,
                cell.panic
            );
        }
    });
    std::panic::set_hook(prev_hook);

    if report.cells.is_empty() {
        eprintln!("error: the filters matched no (entry, graph) cells — nothing was fuzzed");
        exit(2);
    }
    println!(
        "fuzz-schedules: {} permuted runs, specimen {}",
        report.cells.len(),
        if report.specimen_alive { "alive under every permutation" } else { "LOST" }
    );
    if report.is_green() {
        println!("fuzz-schedules: OK — every permuted schedule correct, race-free");
        exit(0);
    }
    let dirty = report.dirty_cells().count();
    eprintln!(
        "fuzz-schedules: FAIL — {dirty} dirty permuted run(s){}",
        if report.specimen_alive { "" } else { "; sanitizer went blind under permutation" }
    );
    exit(1)
}

// ---------------------------------------------------------------------------
// `rdbs-cli sanitize` — the memory-model matrix.
// ---------------------------------------------------------------------------

fn sanitize_usage() -> ! {
    eprintln!(
        "usage: rdbs-cli sanitize [options]

Run every GPU entry point over the graph families with the wave-level
memory-model sanitizer armed: races between lanes, snapshot-visibility
hazards of plain loads, reads of never-written words and gang
divergence all become typed violations. Each cell's answer is also
checked against the Dijkstra oracle. Before the sweep, a planted-race
specimen proves the detector fires. Exits non-zero unless the specimen
is detected AND every cell is correct with zero violations. The sweep
is deterministic: the same flags reproduce the same reports byte for
byte.

  --quick             reduced sweep (quick families, four entries, one source)
  --entry SUBSTR      only entry points whose id contains SUBSTR
  --graph SUBSTR      only families whose name contains SUBSTR
  --frontier single|wheel|mlmq
                      sanitize every RDBS-backed entry on this device
                      frontier layout
  --max N             violations to print per dirty cell (default 5)

entry points:
  {entries}",
        entries =
            rdbs::conformance::san_entries().iter().map(|e| e.id).collect::<Vec<_>>().join(" ")
    );
    exit(2)
}

fn analyze_usage() -> ! {
    eprintln!(
        "usage: rdbs-cli analyze [options]

Run every GPU entry point x frontier layout with the access-IR
recorder armed and verify the retained IR statically: per-kernel
race-freedom certificates (race-free | sanctioned-racy | racy) that
quantify over ALL lane interleavings, per-queue push-bound
certificates (bounded | spilling | overflowing), a gang-divergence
lint and a coalescing / atomic-contention report. Before the sweep,
two specimens prove the verifier fires: the planted write-write race,
and a schedule-hidden publish race the dynamic sanitizer misses under
every permutation. Exits non-zero unless both specimens are caught AND
no kernel is racy, no queue overflows, and every answer is correct.
Deterministic: the same flags reproduce the same bytes.

  --quick             reduced sweep (quick families, quick entries)
  --entry SUBSTR      only entry points whose id contains SUBSTR
  --frontier single|wheel|mlmq
                      analyze only this frontier layout
  --json              print the full report as JSON
  --write PATH        write the certificate baseline to PATH
  --check PATH        diff certificates against the baseline at PATH;
                      fail on lost/downgraded/new-red certificates"
    );
    exit(2)
}

fn analyze_main(args: Vec<String>) -> ! {
    use rdbs::conformance as conf;
    let mut o = conf::AnalyzeOptions::default();
    let mut json = false;
    let mut write_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| analyze_usage());
        match flag.as_str() {
            "--quick" => o.quick = true,
            "--entry" => o.entry_filter = Some(val()),
            "--frontier" => {
                o.frontier = Some(FrontierKind::parse(&val()).unwrap_or_else(|| analyze_usage()));
            }
            "--json" => json = true,
            "--write" => write_path = Some(val()),
            "--check" => check_path = Some(val()),
            "--help" | "-h" => analyze_usage(),
            _ => analyze_usage(),
        }
    }

    // With --json, stdout carries exactly one JSON document; all the
    // human-readable narration moves to stderr so the output pipes
    // straight into a parser.
    macro_rules! say {
        ($($arg:tt)*) => {
            if json { eprintln!($($arg)*) } else { println!($($arg)*) }
        };
    }

    // Liveness first: a green matrix from a dead verifier is
    // meaningless. This also proves the static pass sees strictly
    // more than the dynamic one — the hidden specimen is clean under
    // the default order and 32 fuzzed permutations, yet flagged here.
    match conf::specimens_caught_statically() {
        Ok(()) => {
            let hidden = conf::schedule_hidden_specimen();
            let cert = &hidden.analysis.kernels["hidden-publish"];
            say!(
                "specimen: planted race flagged statically; schedule-hidden race flagged \
                 ({} dynamic violation(s), {} across {} permutations); first finding:",
                hidden.dynamic_violations,
                hidden.fuzz_violations,
                hidden.fuzz_seeds
            );
            say!("  {}", cert.findings[0]);
        }
        Err(e) => {
            eprintln!("FAIL specimen: {e}");
            exit(1);
        }
    }

    let report = conf::run_analyze(&o, |cell| {
        say!(
            "  {:<24} {:>2} run(s) {:>3} kernel(s) {:>2} queue(s)  worst {:<16} {}",
            cell.key(),
            cell.runs,
            cell.analysis.kernels.len(),
            cell.analysis.queues.len(),
            cell.analysis.worst_verdict().name(),
            if cell.is_clean() { "clean" } else { "RED" }
        );
        for cert in cell.analysis.kernels.values() {
            for h in cert.findings.iter().take(3) {
                say!("      {h}");
            }
        }
        if let Some(m) = &cell.mismatch {
            say!("      mismatch: {m}");
        }
        if let Some(p) = &cell.panic {
            say!("      panic: {p}");
        }
    });

    if report.cells.is_empty() {
        eprintln!("error: the filters matched no entry x frontier cells — nothing was verified");
        exit(2);
    }
    if json {
        print!("{}", conf::report_json(&report));
    }
    if let Some(path) = &write_path {
        std::fs::write(path, conf::baseline_json(&report)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        say!("analyze: baseline written to {path}");
    }
    let mut baseline_ok = true;
    if let Some(path) = &check_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
        let check = conf::check_baseline(&report, &text);
        for n in &check.notes {
            say!("note: {n}");
        }
        for f in &check.failures {
            say!("FAIL {f}");
        }
        baseline_ok = check.ok();
        say!(
            "analyze: baseline check {} ({} failure(s), {} note(s))",
            if baseline_ok { "OK" } else { "FAILED" },
            check.failures.len(),
            check.notes.len()
        );
    }

    say!("analyze: {} cells", report.cells.len());
    if report.is_green() && baseline_ok {
        say!("analyze: OK — every kernel certified, every queue bounded or spilling");
        exit(0);
    }
    for c in report.red_cells() {
        say!(
            "FAIL {}: worst verdict {}, worst queue {}{}{}",
            c.key(),
            c.analysis.worst_verdict().name(),
            c.analysis.worst_queue_class().name(),
            c.mismatch.as_deref().map(|m| format!(", mismatch: {m}")).unwrap_or_default(),
            c.panic.as_deref().map(|p| format!(", panic: {p}")).unwrap_or_default(),
        );
    }
    exit(1)
}

fn sanitize_main(args: Vec<String>) -> ! {
    use rdbs::conformance as conf;
    let mut o = conf::SanOptions::default();
    let mut max_print = 5usize;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| sanitize_usage());
        match flag.as_str() {
            "--quick" => o.quick = true,
            "--entry" => o.entry_filter = Some(val()),
            "--graph" => o.graph_filter = Some(val()),
            "--frontier" => {
                o.frontier = Some(FrontierKind::parse(&val()).unwrap_or_else(|| sanitize_usage()));
            }
            "--max" => max_print = val().parse().unwrap_or_else(|_| sanitize_usage()),
            "--help" | "-h" => sanitize_usage(),
            _ => sanitize_usage(),
        }
    }

    // Liveness first: a green matrix from a dead detector is
    // meaningless.
    match conf::specimen_detected() {
        Ok(()) => {
            let v = conf::planted_race_specimen();
            println!("specimen: planted race detected ({} violation(s)); first:", v.len());
            println!("  {}", v[0]);
        }
        Err(e) => {
            eprintln!("FAIL specimen: {e}");
            exit(1);
        }
    }

    let report = conf::run_sanitize(&o, |cell| {
        println!(
            "  {:<16} {:<16} source {:<3} {:>6} violation(s)  {}",
            cell.entry_id,
            cell.graph,
            cell.source,
            cell.total,
            if cell.is_clean() { "clean" } else { "DIRTY" }
        );
        for v in cell.violations.iter().take(max_print) {
            println!("      {v}");
        }
        if let Some(m) = &cell.mismatch {
            println!("      mismatch: {m}");
        }
        if let Some(p) = &cell.panic {
            println!("      panic: {p}");
        }
    });

    println!(
        "sanitize: {} cells, {} violation(s) total",
        report.cells.len(),
        report.total_violations()
    );
    if report.cells.is_empty() {
        eprintln!("error: the filters matched no (entry, graph) cells — nothing was swept");
        exit(2);
    }
    if report.is_green() {
        println!("sanitize: OK — zero violations, all answers correct");
        exit(0);
    }
    for c in report.dirty_cells() {
        println!(
            "FAIL {} on {} (source {}): {} violation(s){}{}",
            c.entry_id,
            c.graph,
            c.source,
            c.total,
            c.mismatch.as_deref().map(|m| format!(", mismatch: {m}")).unwrap_or_default(),
            c.panic.as_deref().map(|p| format!(", panic: {p}")).unwrap_or_default(),
        );
    }
    exit(1)
}
