//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::scope` with the crossbeam 0.8 call shape —
//! `scope(|s| { s.spawn(|_| ...); ... })` returning a
//! `thread::Result` — implemented on top of `std::thread::scope`.
//! Child panics are caught and surfaced as `Err`, exactly like the
//! upstream crate, rather than unwinding through the caller.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scope handle passed to `scope` and to each spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a scope handle
    /// (crossbeam's signature) so nested spawns work.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle { handle: inner.spawn(move || f(&Scope { inner })) }
    }
}

pub struct ScopedJoinHandle<'scope, T> {
    handle: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.handle.join()
    }
}

/// Create a scope for spawning threads that may borrow from the
/// enclosing stack frame. Returns `Err` if any unjoined child panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // std::thread::scope re-raises child panics as a panic in the
    // parent; catch it to match crossbeam's Result-returning contract.
    catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
}

/// Mirror of `crossbeam::thread` for callers that use the long path.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicU32::new(0);
        let r = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            7u32
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_handle() {
        let counter = AtomicU32::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
