//! Offline shim for `rand_chacha`: a real ChaCha8 block cipher in
//! counter mode, seeded via splitmix64 key expansion. Deterministic
//! and high-quality; the stream differs from upstream's (which nothing
//! in this workspace depends on).

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    index: usize,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = s[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let v = splitmix64(&mut x);
            pair[0] = v as u32;
            if pair.len() > 1 {
                pair[1] = (v >> 32) as u32;
            }
        }
        let mut rng = ChaCha8Rng { key, counter: 0, block: [0; 16], index: 16 };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.block[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        hi << 32 | lo
    }
}

/// Same construction with a different round count tag; provided for
/// API parity with upstream.
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn roughly_uniform_bits() {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        let mut ones = 0u64;
        let samples = 4096;
        for _ in 0..samples {
            ones += r.next_u64().count_ones() as u64;
        }
        let expected = samples * 32;
        let dev = (ones as i64 - expected as i64).unsigned_abs();
        assert!(dev < expected / 50, "bit bias too large: {ones} vs {expected}");
    }
}
