//! Offline shim for `criterion`.
//!
//! A small wall-clock benchmarking harness exposing the criterion API
//! this workspace's benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`). Reports
//! mean/min/max per benchmark in plain text; no statistics engine, no
//! HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), param) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 10, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().name, self.sample_size, None, f);
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().name);
        run_one(&id, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(body());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_one<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { samples: Vec::with_capacity(sample_size.max(1)), iters_per_sample: 1 };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Throughput::Bytes(n) => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
        })
        .unwrap_or_default();
    println!("  {id:<40} mean {:>10.3?}  min {:>10.3?}  max {:>10.3?}{rate}", mean, min, max);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
