//! Offline shim for `criterion`.
//!
//! A small wall-clock benchmarking harness exposing the criterion API
//! this workspace's benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`). Like real
//! criterion it reports robust statistics — the median and the median
//! absolute deviation over samples surviving a 1.5×IQR outlier fence —
//! rather than a wall-clock mean, which a single scheduler hiccup can
//! drag arbitrarily far. Plain-text output only; no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), param) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 10, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().name, self.sample_size, None, f);
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().name);
        run_one(&id, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(body());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Robust summary of a sample set: median and median absolute
/// deviation after rejecting points outside the 1.5×IQR fences.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RobustStats {
    /// Median of the surviving samples, in seconds.
    pub median: f64,
    /// Median absolute deviation of the surviving samples, in seconds.
    pub mad: f64,
    /// Samples surviving the outlier fence.
    pub kept: usize,
    /// Samples rejected as outliers.
    pub rejected: usize,
}

/// Median of an already-sorted slice (midpoint average for even n).
fn sorted_median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Compute [`RobustStats`] over raw samples (seconds). Quartiles use
/// the simple midpoint-of-halves rule; a single sample passes through
/// unfenced.
pub fn robust_stats(samples: &[f64]) -> RobustStats {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let kept: Vec<f64> = if sorted.len() < 4 {
        // Too few points for meaningful quartiles — keep everything.
        sorted.clone()
    } else {
        let half = sorted.len() / 2;
        let q1 = sorted_median(&sorted[..half]);
        let q3 = sorted_median(&sorted[sorted.len() - half..]);
        let iqr = q3 - q1;
        let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        sorted.iter().copied().filter(|&s| s >= lo && s <= hi).collect()
    };
    let median = sorted_median(&kept);
    let mut dev: Vec<f64> = kept.iter().map(|&s| (s - median).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).expect("deviations are finite"));
    let mad = sorted_median(&dev);
    RobustStats { median, mad, kept: kept.len(), rejected: samples.len() - kept.len() }
}

fn run_one<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { samples: Vec::with_capacity(sample_size.max(1)), iters_per_sample: 1 };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    let secs: Vec<f64> = b.samples.iter().map(Duration::as_secs_f64).collect();
    let stats = robust_stats(&secs);
    let median = Duration::from_secs_f64(stats.median);
    let mad = Duration::from_secs_f64(stats.mad);
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:>12.0} elem/s", n as f64 / stats.median)
            }
            Throughput::Bytes(n) => {
                format!("  {:>12.0} B/s", n as f64 / stats.median)
            }
        })
        .unwrap_or_default();
    let fence = if stats.rejected > 0 {
        format!("  ({} outlier(s) fenced)", stats.rejected)
    } else {
        String::new()
    };
    println!("  {id:<40} median {median:>10.3?}  mad {mad:>10.3?}{rate}{fence}");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_of_clean_samples() {
        let s = robust_stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mad, 1.0);
        assert_eq!((s.kept, s.rejected), (5, 0));
    }

    #[test]
    fn iqr_fence_rejects_a_scheduler_spike() {
        // Nine tight samples and one 100× spike: the mean would be
        // dragged to ~11, the fenced median stays at the true value.
        let mut samples = vec![1.0; 9];
        samples.push(100.0);
        let s = robust_stats(&samples);
        assert_eq!(s.median, 1.0);
        assert_eq!(s.mad, 0.0);
        assert_eq!((s.kept, s.rejected), (9, 1));
    }

    #[test]
    fn tiny_sample_sets_pass_through() {
        let s = robust_stats(&[5.0]);
        assert_eq!(s.median, 5.0);
        assert_eq!((s.kept, s.rejected), (1, 0));
        let s = robust_stats(&[1.0, 1000.0]);
        assert_eq!(s.median, 500.5);
        assert_eq!(s.rejected, 0);
    }
}
