//! Offline shim for `proptest`.
//!
//! A deterministic property-testing harness exposing the subset of the
//! proptest 1.x API this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range/tuple strategies, [`any`],
//! `prop_oneof!`, `proptest::collection::vec`, the `proptest!` macro
//! family and `prop_assert*`/`prop_assume!`.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic by default.** Every test function derives its case
//!   seeds from a fixed base seed, so a red run on one machine is red
//!   everywhere. Set `PROPTEST_SEED=0x<hex>` to replay one exact case.
//! * **Regression files.** A failing case's seed is appended to
//!   `proptest-regressions/<source-file-stem>.txt` under the crate
//!   root; checked-in seeds are replayed before the main loop.
//! * **No generic shrinking.** Failures report the full generated
//!   inputs and a one-line repro command instead. (Domain-aware
//!   shrinking for SSSP counterexamples lives in `rdbs-conformance`.)

pub mod strategy;
pub use strategy::{any, Arbitrary, Strategy};

pub mod collection {
    pub use crate::strategy::vec;
}

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point without losing determinism.
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// Outcome signal for one test case body.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated inputs do not satisfy a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runner configuration (`cases` is the only knob this workspace sets).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Abort if this many inputs are rejected by `prop_assume!`.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 4096 }
    }
}

pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};
    use std::io::Write as _;
    use std::path::{Path, PathBuf};

    /// Base seed all per-test streams derive from. Bump deliberately to
    /// rotate the whole suite's inputs.
    pub const DEFAULT_BASE_SEED: u64 = 0x5EED_0002_D1FF_5EED;

    fn mix(a: u64, b: u64) -> u64 {
        let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn parse_seed(s: &str) -> Option<u64> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            s.parse().ok()
        }
    }

    fn regression_path(manifest_dir: &str, src_file: &str) -> PathBuf {
        let stem = Path::new(src_file)
            .file_stem()
            .map_or_else(|| "unknown".into(), |s| s.to_string_lossy().into_owned());
        Path::new(manifest_dir).join("proptest-regressions").join(format!("{stem}.txt"))
    }

    fn read_regression_seeds(path: &Path, test_name: &str) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    return None;
                }
                let (name, seed) = line.split_once(char::is_whitespace)?;
                (name == test_name).then(|| parse_seed(seed)).flatten()
            })
            .collect()
    }

    fn record_regression(path: &Path, test_name: &str, seed: u64) {
        if read_regression_seeds(path, test_name).contains(&seed) {
            return;
        }
        let _ = std::fs::create_dir_all(path.parent().unwrap());
        let fresh = !path.exists();
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            if fresh {
                let _ = writeln!(
                    f,
                    "# Seeds of proptest cases that failed at least once; replayed on\n\
                     # every run before the main loop. Check this file in. Format:\n\
                     # <test_name> 0x<seed>"
                );
            }
            let _ = writeln!(f, "{test_name} {seed:#018x}");
        }
    }

    /// Format generated arguments for the failure report.
    pub fn describe(args: &[(&str, &dyn std::fmt::Debug)]) -> String {
        const LIMIT: usize = 2048;
        let mut out = String::new();
        for (name, value) in args {
            let mut rendered = format!("{value:?}");
            if rendered.len() > LIMIT {
                let cut = (0..=LIMIT).rev().find(|&i| rendered.is_char_boundary(i)).unwrap();
                rendered.truncate(cut);
                rendered.push_str("… (truncated)");
            }
            out.push_str("\n    ");
            out.push_str(name);
            out.push_str(" = ");
            out.push_str(&rendered);
        }
        out
    }

    /// Drive one `proptest!`-generated test function.
    pub fn run<F>(
        config: &ProptestConfig,
        manifest_dir: &str,
        pkg_name: &str,
        src_file: &str,
        test_name: &str,
        mut case: F,
    ) where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let reg_path = regression_path(manifest_dir, src_file);
        let fail = |seed: u64, label: &str, desc: &str, msg: &str| -> ! {
            record_regression(&reg_path, test_name, seed);
            panic!(
                "proptest shim: property '{test_name}' failed ({label}, seed {seed:#x})\n  \
                 args:{desc}\n  cause: {msg}\n  \
                 repro: PROPTEST_SEED={seed:#x} cargo test -p {pkg_name} {test_name}\n  \
                 (seed recorded in {})",
                reg_path.display()
            );
        };

        // A single explicit seed replays exactly one case.
        if let Ok(var) = std::env::var("PROPTEST_SEED") {
            let seed = parse_seed(&var)
                .unwrap_or_else(|| panic!("unparseable PROPTEST_SEED value '{var}'"));
            let mut rng = TestRng::new(seed);
            let (desc, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => return,
                Err(TestCaseError::Reject(m)) => {
                    panic!("PROPTEST_SEED={seed:#x} was rejected by prop_assume!: {m}")
                }
                Err(TestCaseError::Fail(m)) => fail(seed, "explicit seed", &desc, &m),
            }
        }

        // Replay checked-in regression seeds first.
        for seed in read_regression_seeds(&reg_path, test_name) {
            let mut rng = TestRng::new(seed);
            let (desc, outcome) = case(&mut rng);
            if let Err(TestCaseError::Fail(m)) = outcome {
                fail(seed, "regression replay", &desc, &m);
            }
        }

        // Main deterministic loop.
        let base = mix(DEFAULT_BASE_SEED, fnv1a(test_name));
        let mut rejects = 0u32;
        for i in 0..config.cases {
            let mut attempt = 0u64;
            loop {
                let seed = mix(base, (i as u64) << 20 | attempt);
                let mut rng = TestRng::new(seed);
                let (desc, outcome) = case(&mut rng);
                match outcome {
                    Ok(()) => break,
                    Err(TestCaseError::Reject(m)) => {
                        rejects += 1;
                        attempt += 1;
                        if rejects > config.max_global_rejects {
                            panic!(
                                "proptest shim: '{test_name}' rejected too many inputs \
                                 ({rejects}); last: {m}"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(m)) => {
                        fail(seed, &format!("case {}/{}", i + 1, config.cases), &desc, &m)
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::runner::run(
                    &__config,
                    env!("CARGO_MANIFEST_DIR"),
                    env!("CARGO_PKG_NAME"),
                    file!(),
                    stringify!($name),
                    |__rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                        let __desc = $crate::runner::describe(&[
                            $((stringify!($arg), &$arg as &dyn ::core::fmt::Debug)),+
                        ]);
                        let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                            (move || {
                                $body
                                #[allow(unreachable_code)]
                                ::core::result::Result::Ok(())
                            })();
                        (__desc, __outcome)
                    },
                );
            }
        )*
    };
}

// Re-exported under the path the `#[macro_export]` attribute flattens
// away, so `proptest::prop_assert!`-style paths also work.
pub use crate::{prop_assert as _prop_assert_reexport, proptest as _proptest_reexport};

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_streams() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 5u32..17, y in 0usize..3, z in 1u8..255) {
            prop_assert!((5..17).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((1..255).contains(&z));
        }

        #[test]
        fn maps_and_tuples_compose(v in crate::collection::vec((0u32..10, 0u32..10), 0..20)) {
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn flat_map_threads_dependent_values(pair in (2usize..30).prop_flat_map(|n| {
            (0..n).prop_map(move |i| (n, i))
        })) {
            prop_assert!(pair.1 < pair.0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![0u32..1, 10u32..11, 20u32..21]) {
            prop_assert!(x == 0 || x == 10 || x == 20);
        }
    }
}
