//! Strategy combinators for the proptest shim.

use crate::TestRng;
use std::marker::PhantomData;

/// A recipe for generating values of one type. Object-safe for
/// `generate`, so `prop_oneof!` can erase heterogeneous arm types.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive values", self.reason);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `Just`-style constant strategy (upstream's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the standard strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Box a strategy for heterogeneous storage (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Uniform choice between boxed alternative strategies.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// `proptest::collection::vec` — a vector whose length is drawn from
/// `len_range` and whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    len_range: std::ops::Range<usize>,
}

pub fn vec<S: Strategy>(element: S, len_range: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len_range }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len_range.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
