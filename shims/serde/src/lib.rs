//! Offline shim for `serde`.
//!
//! `Serialize`/`Deserialize` are marker traits here: nothing in this
//! workspace actually serializes through serde (the binary CSR format
//! is hand-rolled), but types carry the derives so downstream users
//! can swap in real serde without touching call sites. Impls for std
//! primitives and containers mirror upstream's blanket coverage.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl Deserialize for $t {})*
    };
}

impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String,
    str
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
