//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns a guard directly). Only the surface this
//! workspace uses is provided.

use std::sync::{self, MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// parking_lot mutexes do not poison: a panic while holding the
    /// lock leaves the data accessible, matching the upstream crate.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
