//! Offline shim for `bytes`.
//!
//! `BytesMut` is a growable byte buffer (a thin `Vec<u8>` wrapper),
//! `Bytes` a cursor over an owned buffer. The `Buf`/`BufMut` traits
//! carry only the little-endian accessors this workspace uses.

use std::ops::Deref;

/// Read-side trait: a cursor over a byte sequence.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side trait: append-only byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

/// Owned byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut w = BytesMut::with_capacity(16);
        w.put_slice(b"HDR!");
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 7);
        let mut r = Bytes::from(Vec::from(w));
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::from(vec![1u8, 2]);
        let _ = r.get_u32_le();
    }
}
