//! Offline shim for `rand` 0.8.
//!
//! Implements the trait surface this workspace uses — `RngCore`,
//! `SeedableRng`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle` — with the same signatures as upstream.
//! Generators are deterministic; stream values differ from the real
//! crate (nothing in-repo depends on upstream's exact streams).

/// Low-level generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl StandardSample for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + x as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let x = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + x as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// `RngCore` (mirrors upstream).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    fn sample_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        let wide = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        (wide % bound as u128) as usize
    }

    /// Slice extensions (`shuffle` via Fisher-Yates).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = sample_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = sample_index(rng, self.len());
                Some(&self[i])
            }
        }
    }
}

pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Lcg(42);
        for _ in 0..1000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0..=5usize);
            assert!(y <= 5);
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut Lcg(7));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut r = Lcg(3);
        let dynr: &mut dyn RngCore = &mut r;
        let x = Rng::gen::<f64>(&mut *dynr);
        assert!((0.0..1.0).contains(&x));
    }
}
