//! Offline shim for `serde_derive`.
//!
//! Emits marker-trait impls (`impl serde::Serialize for T {}`) without
//! depending on syn/quote: the type name is extracted by walking the
//! raw token stream. Supports plain (non-generic) structs and enums,
//! which is all this workspace derives on.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.peek() {
                            if p.as_char() == '<' {
                                panic!(
                                    "serde shim derive does not support generic type `{name}`; \
                                     write the impl manually"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde shim derive: no struct/enum found in input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}").parse().unwrap()
}
