//! Miniature versions of the paper's experiments asserting the
//! *shapes* the evaluation section reports. These run on reduced
//! inputs, so they check orderings and qualitative relations, not the
//! paper's absolute factors (see EXPERIMENTS.md for the recorded
//! full-harness runs).

use rdbs::baselines::run_adds;
use rdbs::graph::builder::build_undirected;
use rdbs::graph::datasets::{by_name, kronecker_spec};
use rdbs::graph::generate::{kronecker, uniform_weights, KroneckerConfig};
use rdbs::graph::{Csr, VertexId};
use rdbs::sim::DeviceConfig;
use rdbs::sssp::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs::sssp::seq::{delta_stepping_traced, dijkstra};

/// A typical (low-degree, connected) starting vertex — Kronecker
/// graphs contain isolated vertices after label permutation, and
/// starting from a hub saturates bucket 0 immediately, masking the
/// rise-then-tail occupancy shape Fig. 2 plots.
fn connected_source(g: &Csr) -> VertexId {
    (0..g.num_vertices() as VertexId)
        .find(|&v| (1..=3).contains(&g.degree(v)))
        .or_else(|| (0..g.num_vertices() as VertexId).find(|&v| g.degree(v) > 0))
        .expect("edgeless graph")
}

fn scaled_device() -> DeviceConfig {
    DeviceConfig::v100().with_overhead_scale(1.0 / 128.0).with_cache_scale(1.0 / 128.0)
}

/// Fig. 2: Δ-stepping bucket occupancy rises to an early peak and
/// decays over a long tail on Kronecker graphs.
#[test]
fn fig2_shape_bucket_occupancy_peaks_early() {
    let mut el = kronecker(KroneckerConfig::new(14, 16), 1);
    uniform_weights(&mut el, 2);
    let g = build_undirected(&el);
    let s = connected_source(&g);
    let run = delta_stepping_traced(&g, s, g.max_weight() / 10, None);
    let occ: Vec<u64> = run.buckets.iter().map(|b| b.active).collect();
    let peak = run.peak_bucket().unwrap();
    assert!(occ.len() >= 6, "need several buckets, got {}", occ.len());
    assert!(peak <= occ.len() / 2, "peak at {peak} of {}", occ.len());
    assert!(occ[peak] as f64 >= 3.0 * occ[0] as f64, "sharp rise expected: {occ:?}");
    assert!(occ[peak] > 10 * *occ.last().unwrap(), "decaying tail expected: {occ:?}");
}

/// Fig. 3: the peak bucket takes many phase-1 layers and total updates
/// exceed valid updates substantially.
#[test]
fn fig3_shape_peak_bucket_iterations_and_waste() {
    let mut el = kronecker(KroneckerConfig::new(14, 16), 1);
    uniform_weights(&mut el, 2);
    let g = build_undirected(&el);
    let s = connected_source(&g);
    let oracle = dijkstra(&g, s);
    let run = delta_stepping_traced(&g, s, g.max_weight() / 10, Some(&oracle.dist));
    let b = &run.buckets[run.peak_bucket().unwrap()];
    assert!(b.layer_active.len() >= 3, "peak bucket should take several iterations");
    assert!(
        b.phase1_updates > b.phase1_valid_updates,
        "total updates ({}) must exceed valid ({})",
        b.phase1_updates,
        b.phase1_valid_updates
    );
}

/// Fig. 8 (headline): on the Kronecker graph, full RDBS beats the
/// synchronous baseline, and each added optimization is not harmful.
#[test]
fn fig8_shape_rdbs_beats_bl_on_kronecker() {
    let g = kronecker_spec(21, 16).generate(8, 42);
    let s = 3;
    let bl = run_gpu(&g, s, Variant::Baseline, scaled_device());
    let full = run_gpu(&g, s, Variant::Rdbs(RdbsConfig::full()), scaled_device());
    assert!(
        full.elapsed_ms < bl.elapsed_ms,
        "RDBS {} ms must beat BL {} ms on Kronecker",
        full.elapsed_ms,
        bl.elapsed_ms
    );
    // Work efficiency: RDBS does far fewer updates. The exact factor
    // is instance-dependent (the vendored RNG shim generates a
    // slightly different Kronecker instance than upstream rand_chacha
    // did, measured ratio ~1.9x); assert a conservative 1.5x so the
    // shape survives generator changes while still catching any
    // work-efficiency regression.
    assert!(full.result.stats.total_updates * 3 < bl.result.stats.total_updates * 2);
}

/// Table 2 / Fig. 9: RDBS beats ADDS on the skewed Kronecker graph and
/// ADDS performs more updates.
#[test]
fn table2_shape_rdbs_beats_adds_on_kronecker() {
    let g = kronecker_spec(21, 16).generate(8, 42);
    let s = 3;
    let rdbs = run_gpu(&g, s, Variant::Rdbs(RdbsConfig::full()), scaled_device());
    let adds = run_adds(&g, s, scaled_device());
    assert!(
        rdbs.elapsed_ms < adds.elapsed_ms,
        "RDBS {} ms vs ADDS {} ms",
        rdbs.elapsed_ms,
        adds.elapsed_ms
    );
    assert!(
        adds.result.stats.total_updates > rdbs.result.stats.total_updates,
        "ADDS must be less work-efficient (Fig. 9)"
    );
}

/// §5.2.2: ADDS wins (or at least matches) on the road graph — the
/// paper's crossover.
#[test]
fn table2_shape_road_crossover() {
    let g = by_name("road-TX").unwrap().generate(9, 42);
    let s = 0;
    let rdbs = run_gpu(&g, s, Variant::Rdbs(RdbsConfig::full()), scaled_device());
    let adds = run_adds(&g, s, scaled_device());
    assert!(
        adds.elapsed_ms <= rdbs.elapsed_ms * 1.4,
        "road-TX: ADDS ({} ms) should be competitive with RDBS ({} ms)",
        adds.elapsed_ms,
        rdbs.elapsed_ms
    );
}

/// Fig. 10: RDBS executes fewer warp-level load instructions than ADDS
/// and enjoys a better L1 hit rate on skewed graphs.
#[test]
fn fig10_shape_profiling_counters() {
    let g = kronecker_spec(21, 16).generate(8, 7);
    let s = 1;
    let rdbs = run_gpu(&g, s, Variant::Rdbs(RdbsConfig::full()), scaled_device());
    let adds = run_adds(&g, s, scaled_device());
    assert!(
        rdbs.counters.inst_executed_global_loads < adds.counters.inst_executed_global_loads,
        "loads: rdbs {} vs adds {}",
        rdbs.counters.inst_executed_global_loads,
        adds.counters.inst_executed_global_loads
    );
    assert!(
        rdbs.counters.global_hit_rate() > adds.counters.global_hit_rate(),
        "hit rate: rdbs {:.1} vs adds {:.1}",
        rdbs.counters.global_hit_rate(),
        adds.counters.global_hit_rate()
    );
}

/// Fig. 11: GTEPS grows with edgefactor.
#[test]
fn fig11_shape_gteps_grows_with_edgefactor() {
    let mut gteps = Vec::new();
    for ef in [4u32, 16] {
        let mut el = kronecker(KroneckerConfig::new(12, ef), 3);
        uniform_weights(&mut el, 4);
        let g = build_undirected(&el);
        let run = run_gpu(&g, 1, Variant::Rdbs(RdbsConfig::full()), scaled_device());
        gteps.push(run.gteps);
    }
    assert!(gteps[1] > gteps[0], "GTEPS must rise with edgefactor: {gteps:?}");
}

/// Fig. 12: the V100 beats the T4 by roughly the hardware ratio.
#[test]
fn fig12_shape_v100_vs_t4() {
    let g = kronecker_spec(21, 16).generate(7, 5);
    let s = connected_source(&g);
    let v100 = run_gpu(
        &g,
        s,
        Variant::Rdbs(RdbsConfig::full()),
        DeviceConfig::v100().with_overhead_scale(1.0 / 128.0).with_cache_scale(1.0 / 128.0),
    );
    let t4 = run_gpu(
        &g,
        s,
        Variant::Rdbs(RdbsConfig::full()),
        DeviceConfig::t4().with_overhead_scale(1.0 / 128.0).with_cache_scale(1.0 / 128.0),
    );
    let ratio = t4.elapsed_ms / v100.elapsed_ms;
    // At 1/128 scale much of the run is latency-bound, which both
    // devices share, so the ratio compresses below the paper's
    // bandwidth-bound 1.47–2.58; it must still clearly favour V100.
    assert!(ratio > 1.1 && ratio < 4.0, "V100 must beat T4 (paper: 1.47-2.58x), got {ratio:.2}");
}
