//! Degenerate-input edge cases every implementation must survive:
//! zero-weight edges, the widest possible bucket (Δ₀ = u32::MAX), a
//! source sitting alone in a disconnected component, and a graph with
//! no edges at all. Each case runs across the sequential, CPU-parallel
//! and GPU-RDBS paths and is checked against the Dijkstra oracle.

use rdbs::graph::builder::{build_undirected, EdgeList};
use rdbs::graph::generate::{erdos_renyi, uniform_weights};
use rdbs::graph::{Csr, VertexId, INF};
use rdbs::sim::DeviceConfig;
use rdbs::sssp::cpu::parallel_delta_stepping;
use rdbs::sssp::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs::sssp::seq::{delta_stepping, dijkstra};
use rdbs::sssp::validate::check_against;

/// Run seq Δ-stepping, CPU-parallel Δ-stepping and GPU RDBS-full on
/// `g` and compare each against the Dijkstra oracle.
fn assert_all_impls_agree(g: &Csr, source: VertexId, delta: u32, label: &str) {
    let oracle = dijkstra(g, source);
    let check = |impl_name: &str, dist: &[u32]| {
        check_against(&oracle.dist, dist)
            .unwrap_or_else(|m| panic!("{label}/{impl_name} source {source}: {m}"));
    };
    check("seq/delta-stepping", &delta_stepping(g, source, delta).dist);
    check("cpu/parallel-delta", &parallel_delta_stepping(g, source, delta, 2).dist);
    let cfg = RdbsConfig { delta0: Some(delta), ..RdbsConfig::full() };
    let run = run_gpu(g, source, Variant::Rdbs(cfg), DeviceConfig::test_tiny());
    check("gpu/full", &run.result.dist);
    oracle_sanity(&oracle.dist, source);
}

fn oracle_sanity(dist: &[u32], source: VertexId) {
    assert_eq!(dist[source as usize], 0, "source distance must be 0");
}

#[test]
fn zero_weight_edges() {
    // A zero-weight cluster {0,1,2} hanging off a weighted spine: all
    // cluster members collapse to the same distance, and zero-weight
    // relaxations must neither loop forever nor be skipped.
    let el = EdgeList::from_edges(
        6,
        vec![
            (0, 1, 0),
            (1, 2, 0),
            (2, 0, 0), // zero-weight cycle
            (2, 3, 7),
            (3, 4, 0),
            (4, 5, 9),
        ],
    );
    let g = build_undirected(&el);
    let oracle = dijkstra(&g, 0);
    assert_eq!(oracle.dist, vec![0, 0, 0, 7, 7, 16]);
    for delta in [1, 8, 1000] {
        assert_all_impls_agree(&g, 0, delta, "zero-weight");
    }
}

#[test]
fn zero_weight_edges_on_random_graph() {
    // Random instance where every third edge weighs zero.
    let mut el = erdos_renyi(120, 600, 21);
    uniform_weights(&mut el, 22);
    for (i, e) in el.edges.iter_mut().enumerate() {
        if i % 3 == 0 {
            e.2 = 0;
        }
    }
    let g = build_undirected(&el);
    for source in [0, 17] {
        assert_all_impls_agree(&g, source, 64, "zero-weight-random");
    }
}

#[test]
fn delta0_u32_max_is_one_giant_bucket() {
    // Δ₀ = u32::MAX puts every reachable vertex in bucket 0: the
    // algorithm degenerates to Bellman-Ford-within-a-bucket and any
    // adaptive width-doubling must not overflow.
    let mut el = erdos_renyi(150, 700, 31);
    uniform_weights(&mut el, 32);
    let g = build_undirected(&el);
    assert_all_impls_agree(&g, 0, u32::MAX, "delta-max");
}

#[test]
fn source_in_singleton_component() {
    // Vertex 250 is isolated in the disconnected family: searching
    // *from* it must return 0 for itself and INF everywhere else.
    let mut el = erdos_renyi(200, 400, 5);
    el.num_vertices = 260;
    uniform_weights(&mut el, 15);
    let g = build_undirected(&el);
    let isolated = (0..260).find(|&v| g.degree(v) == 0).expect("family has isolated vertices");
    let oracle = dijkstra(&g, isolated);
    assert_eq!(oracle.dist[isolated as usize], 0);
    assert_eq!(oracle.dist.iter().filter(|&&d| d == INF).count(), 259);
    assert_all_impls_agree(&g, isolated, 64, "singleton-source");
}

#[test]
fn empty_edge_list() {
    // No edges at all: every implementation must terminate immediately
    // with dist = [INF.., 0 at source, INF..].
    let g = build_undirected(&EdgeList::from_edges(5, vec![]));
    assert_eq!(g.num_edges(), 0);
    let oracle = dijkstra(&g, 2);
    assert_eq!(oracle.dist, vec![INF, INF, 0, INF, INF]);
    for delta in [1, u32::MAX] {
        assert_all_impls_agree(&g, 2, delta, "empty");
    }
}
