//! Property-based tests over the whole stack (proptest).

use proptest::prelude::*;
use rdbs::graph::builder::{build_undirected, EdgeList};
use rdbs::graph::reorder::{self, Permutation};
use rdbs::graph::{Csr, VertexId, Weight};
use rdbs::sim::DeviceConfig;
use rdbs::sssp::cpu::parallel_delta_stepping;
use rdbs::sssp::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs::sssp::seq::{delta_stepping, dijkstra};
use rdbs::sssp::validate::{check_against, check_relaxed};

/// Strategy: a random weighted undirected graph of up to `n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        let edge = (0..n as VertexId, 0..n as VertexId, 1..1000 as Weight);
        proptest::collection::vec(edge, 0..max_m)
            .prop_map(move |edges| build_undirected(&EdgeList::from_edges(n, edges)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn delta_stepping_matches_dijkstra(g in arb_graph(60, 200), delta in 1u32..2000, src in 0u32..60) {
        let src = src % g.num_vertices() as u32;
        let oracle = dijkstra(&g, src);
        let r = delta_stepping(&g, src, delta);
        prop_assert_eq!(&r.dist, &oracle.dist);
        check_relaxed(&g, src, &r.dist).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn gpu_rdbs_matches_dijkstra(g in arb_graph(50, 160), src in 0u32..50) {
        let src = src % g.num_vertices() as u32;
        let oracle = dijkstra(&g, src);
        let run = run_gpu(&g, src, Variant::Rdbs(RdbsConfig::full()), DeviceConfig::test_tiny());
        prop_assert!(check_against(&oracle.dist, &run.result.dist).is_ok());
    }

    #[test]
    fn cpu_parallel_matches_dijkstra(g in arb_graph(50, 160), delta in 1u32..1500, src in 0u32..50) {
        let src = src % g.num_vertices() as u32;
        let oracle = dijkstra(&g, src);
        let r = parallel_delta_stepping(&g, src, delta, 2);
        prop_assert_eq!(&r.dist, &oracle.dist);
    }

    #[test]
    fn pro_preserves_shortest_paths(g in arb_graph(40, 120), delta in 1u32..1500, src in 0u32..40) {
        let src = src % g.num_vertices() as u32;
        let (pg, perm) = reorder::pro(&g, delta);
        // Distances on the reordered graph, mapped back, must equal
        // distances on the original graph.
        let orig = dijkstra(&g, src);
        let re = dijkstra(&pg, perm.new_id(src));
        let mapped = perm.unapply_to_array(&re.dist);
        prop_assert_eq!(&mapped, &orig.dist);
        // PRO structural invariants.
        prop_assert!(pg.is_fully_weight_sorted());
        prop_assert!(pg.validate().is_ok());
    }

    #[test]
    fn permutation_roundtrip(n in 1usize..80, seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
        ids.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(seed));
        let p = Permutation::from_old_to_new(ids);
        let vals: Vec<u32> = (0..n as u32).map(|x| x * 7 + 1).collect();
        let there = p.apply_to_array(&vals);
        let back = p.unapply_to_array(&there);
        prop_assert_eq!(back, vals);
        prop_assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn work_stats_invariants(g in arb_graph(50, 200), src in 0u32..50) {
        let src = src % g.num_vertices() as u32;
        let r = dijkstra(&g, src);
        // Checks >= updates; updates >= reached - 1 (every reached
        // non-source vertex was updated at least once).
        prop_assert!(r.stats.checks >= r.stats.total_updates);
        prop_assert!(r.stats.total_updates >= r.reached() as u64 - 1);
    }

    #[test]
    fn simulator_is_deterministic(g in arb_graph(40, 120), src in 0u32..40) {
        let src = src % g.num_vertices() as u32;
        let a = run_gpu(&g, src, Variant::Rdbs(RdbsConfig::full()), DeviceConfig::test_tiny());
        let b = run_gpu(&g, src, Variant::Rdbs(RdbsConfig::full()), DeviceConfig::test_tiny());
        prop_assert_eq!(a.result.dist, b.result.dist);
        prop_assert_eq!(a.counters, b.counters);
        prop_assert!((a.elapsed_ms - b.elapsed_ms).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn multi_gpu_matches_dijkstra(g in arb_graph(40, 120), k in 1usize..5, src in 0u32..40) {
        use rdbs::sssp::gpu::{multi_gpu_sssp, MultiGpuConfig};
        let src = src % g.num_vertices() as u32;
        let cfg = MultiGpuConfig {
            num_devices: k,
            device: DeviceConfig::test_tiny(),
            interconnect_gbps: 50.0,
            exchange_latency_us: 5.0,
            delta0: None,
        };
        let run = multi_gpu_sssp(&g, src, &cfg);
        let oracle = dijkstra(&g, src);
        prop_assert_eq!(&run.result.dist, &oracle.dist);
    }

    #[test]
    fn parent_tree_paths_are_shortest(g in arb_graph(40, 120), src in 0u32..40) {
        use rdbs::sssp::paths::{build_parent_tree, extract_path, verify_path};
        let src = src % g.num_vertices() as u32;
        let r = dijkstra(&g, src);
        let parents = build_parent_tree(&g, src, &r.dist);
        for v in 0..g.num_vertices() as u32 {
            if r.dist[v as usize] == rdbs::sssp::INF {
                continue;
            }
            let path = extract_path(&parents, src, v).expect("path must exist");
            verify_path(&g, &path, r.dist[v as usize]).map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn bidirectional_equals_full_sssp(g in arb_graph(40, 120), src in 0u32..40, dst in 0u32..40) {
        use rdbs::sssp::paths::bidirectional_dijkstra;
        let n = g.num_vertices() as u32;
        let (src, dst) = (src % n, dst % n);
        let full = dijkstra(&g, src);
        let bd = bidirectional_dijkstra(&g, src, dst);
        let expect = if full.dist[dst as usize] == rdbs::sssp::INF {
            None
        } else {
            Some(full.dist[dst as usize])
        };
        prop_assert_eq!(bd, expect);
    }

    #[test]
    fn framework_sssp_matches_dijkstra(g in arb_graph(40, 120), src in 0u32..40) {
        let src = src % g.num_vertices() as u32;
        let (r, _) = rdbs::framework::algorithms::sssp(DeviceConfig::test_tiny(), &g, src);
        let oracle = dijkstra(&g, src);
        prop_assert_eq!(&r.dist, &oracle.dist);
    }
}
