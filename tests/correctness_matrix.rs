//! Cross-crate correctness matrix: every SSSP implementation in the
//! workspace × every graph family × several sources must agree with
//! the Dijkstra oracle exactly.

use rdbs::baselines::{adds, near_far, pq_delta_stepping};
use rdbs::graph::builder::{build_undirected, EdgeList};
use rdbs::graph::generate::{
    erdos_renyi, grid_road, kronecker, preferential_attachment, uniform_weights, GridConfig,
    KroneckerConfig,
};
use rdbs::graph::Csr;
use rdbs::sim::{Device, DeviceConfig};
use rdbs::sssp::cpu::{async_bucket_sssp, parallel_delta_stepping};
use rdbs::sssp::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs::sssp::seq::{bellman_ford, delta_stepping, dijkstra};
use rdbs::sssp::{default_delta, validate::check_against};

fn families() -> Vec<(&'static str, Csr)> {
    let weights = |mut el: EdgeList, seed| {
        uniform_weights(&mut el, seed);
        build_undirected(&el)
    };
    vec![
        ("erdos_renyi", weights(erdos_renyi(300, 1500, 1), 11)),
        ("powerlaw", weights(preferential_attachment(400, 4, 2), 12)),
        ("kronecker", weights(kronecker(KroneckerConfig::new(9, 6), 3), 13)),
        ("grid", weights(grid_road(GridConfig::road(24, 24), 4), 14)),
        (
            "disconnected",
            weights(
                {
                    let mut el = erdos_renyi(200, 400, 5);
                    el.num_vertices = 260; // 60 isolated vertices
                    el
                },
                15,
            ),
        ),
    ]
}

#[test]
fn every_implementation_matches_dijkstra() {
    for (name, g) in families() {
        let delta = default_delta(&g);
        for source in [0u32, 7, 42] {
            let source = source % g.num_vertices() as u32;
            let oracle = dijkstra(&g, source);
            let check = |label: &str, dist: &[u32]| {
                check_against(&oracle.dist, dist)
                    .unwrap_or_else(|m| panic!("{name}/{label} source {source}: {m}"));
            };

            check("bellman_ford", &bellman_ford(&g, source).dist);
            check("delta_stepping", &delta_stepping(&g, source, delta).dist);
            check("cpu_parallel", &parallel_delta_stepping(&g, source, delta, 2).dist);
            check("cpu_async", &async_bucket_sssp(&g, source, delta, 2).dist);
            check("pq_delta", &pq_delta_stepping(&g, source, 2, None).dist);

            for variant in [
                Variant::Baseline,
                Variant::Rdbs(RdbsConfig::full()),
                Variant::Rdbs(RdbsConfig::basyn_pro()),
                Variant::Rdbs(RdbsConfig::basyn_adwl()),
                Variant::Rdbs(RdbsConfig::basyn_only()),
                Variant::Rdbs(RdbsConfig::sync_delta()),
            ] {
                let run = run_gpu(&g, source, variant, DeviceConfig::test_tiny());
                check(&run.label, &run.result.dist);
            }

            let mut d = Device::new(DeviceConfig::test_tiny());
            check("adds", &adds(&mut d, &g, source, delta).dist);
            let mut d = Device::new(DeviceConfig::test_tiny());
            check("near_far", &near_far(&mut d, &g, source, delta).dist);
        }
    }
}

#[test]
fn delta_extremes_are_correct_on_gpu() {
    let mut el = erdos_renyi(150, 800, 8);
    uniform_weights(&mut el, 9);
    let g = build_undirected(&el);
    let oracle = dijkstra(&g, 3);
    for delta0 in [1u32, 7, 999, 1000, 100_000] {
        let cfg = RdbsConfig { delta0: Some(delta0), ..RdbsConfig::full() };
        let run = run_gpu(&g, 3, Variant::Rdbs(cfg), DeviceConfig::test_tiny());
        check_against(&oracle.dist, &run.result.dist)
            .unwrap_or_else(|m| panic!("delta0 {delta0}: {m}"));
    }
}

#[test]
fn single_vertex_and_self_loop_edge_cases() {
    // Self-loops are dropped by the builder; a singleton graph works
    // in every implementation.
    let g = build_undirected(&EdgeList::from_edges(1, vec![(0, 0, 5)]));
    assert_eq!(dijkstra(&g, 0).dist, vec![0]);
    assert_eq!(
        run_gpu(&g, 0, Variant::Rdbs(RdbsConfig::full()), DeviceConfig::test_tiny()).result.dist,
        vec![0]
    );
    assert_eq!(parallel_delta_stepping(&g, 0, 10, 2).dist, vec![0]);
}
