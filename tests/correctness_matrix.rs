//! Cross-crate correctness matrix: every SSSP implementation in the
//! workspace × every graph family × several seeded sources must agree
//! with the Dijkstra oracle exactly.
//!
//! The sweep itself lives in `rdbs::conformance` (shared with
//! `rdbs-cli verify`); these tests drive the same harness so the
//! in-tree matrix and the CLI can never drift apart.

use rdbs::conformance::{
    all, by_id, run_matrix, shrink, with_faults, MatrixOptions, FAULT_OFF_BY_ONE,
};
use rdbs::graph::builder::{build_undirected, EdgeList};
use rdbs::graph::generate::{erdos_renyi, uniform_weights};
use rdbs::sim::DeviceConfig;
use rdbs::sssp::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs::sssp::seq::dijkstra;
use rdbs::sssp::validate::check_against;

#[test]
fn every_implementation_matches_dijkstra() {
    let report = run_matrix(&MatrixOptions::default(), |_, _, _, _| {});
    assert!(report.impls_run >= all().len(), "registry shrank");
    assert!(report.graphs_run >= 5, "family list shrank");
    assert!(
        report.is_green(),
        "{} conformance failures:\n{}",
        report.failures.len(),
        report
            .failures
            .iter()
            .map(|f| format!("  {} on {} from {}: {}", f.impl_id, f.graph, f.source, f.kind))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn injected_fault_is_caught_and_minimized() {
    // End-to-end acceptance: the deliberate off-by-one specimen must be
    // flagged by the matrix and then shrink to a replayable witness of
    // at most 20 vertices.
    let opts = MatrixOptions {
        quick: true,
        impl_filter: Some("fault/".into()),
        include_faults: true,
        ..MatrixOptions::default()
    };
    let report = run_matrix(&opts, |_, _, _, _| {});
    assert!(!report.is_green(), "fault specimen went undetected");

    let imp = by_id(FAULT_OFF_BY_ONE).unwrap();
    assert!(with_faults().iter().any(|i| i.id == FAULT_OFF_BY_ONE));
    let mut el = erdos_renyi(300, 1500, 1);
    uniform_weights(&mut el, 11);
    let shrunk = shrink(&imp, &el, 0, None);
    assert!(
        shrunk.witness.edges.num_vertices <= 20,
        "witness not minimal: {} vertices",
        shrunk.witness.edges.num_vertices
    );
    let cmd = shrunk.repro_command("witness.txt");
    assert!(cmd.starts_with("rdbs-cli verify --impl fault/off-by-one"));
}

#[test]
fn delta_extremes_are_correct_on_gpu() {
    let mut el = erdos_renyi(150, 800, 8);
    uniform_weights(&mut el, 9);
    let g = build_undirected(&el);
    let oracle = dijkstra(&g, 3);
    for delta0 in [1u32, 7, 999, 1000, 100_000] {
        let cfg = RdbsConfig { delta0: Some(delta0), ..RdbsConfig::full() };
        let run = run_gpu(&g, 3, Variant::Rdbs(cfg), DeviceConfig::test_tiny());
        check_against(&oracle.dist, &run.result.dist)
            .unwrap_or_else(|m| panic!("delta0 {delta0}: {m}"));
    }
}

#[test]
fn single_vertex_and_self_loop_edge_cases() {
    // Self-loops are dropped by the builder; a singleton graph works
    // in every registered implementation.
    let g = build_undirected(&EdgeList::from_edges(1, vec![(0, 0, 5)]));
    let oracle = dijkstra(&g, 0);
    assert_eq!(oracle.dist, vec![0]);
    for imp in all() {
        let r = imp.run(&g, 0, None);
        check_against(&oracle.dist, &r.dist)
            .unwrap_or_else(|m| panic!("{} on singleton: {m}", imp.id));
    }
}
