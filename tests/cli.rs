//! Integration tests for the `rdbs-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdbs-cli"))
}

#[test]
fn generates_runs_and_validates() {
    let out = cli()
        .args(["--gen", "kronecker:10:8", "--algo", "rdbs", "--validate", "--profile"])
        .output()
        .expect("cli must run");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("graph: 1024 vertices"));
    assert!(stdout.contains("validation: OK"));
    assert!(stdout.contains("profile[BASYN+PRO+ADWL]"));
    assert!(stdout.contains("simulated"));
}

#[test]
fn loads_dimacs_file() {
    let dir = std::env::temp_dir().join("rdbs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.gr");
    std::fs::write(&path, "c tiny\np sp 3 2\na 1 2 7\na 2 3 5\n").unwrap();
    let out = cli()
        .args([
            "--load",
            path.to_str().unwrap(),
            "--format",
            "dimacs",
            "--algo",
            "dijkstra",
            "--print-dist",
            "3",
        ])
        .output()
        .expect("cli must run");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dist[0..3] = [0, 7, 12]"), "stdout: {stdout}");
}

#[test]
fn dataset_standin_and_cpu_algo() {
    let out = cli()
        .args(["--gen", "dataset:Amazon:8", "--algo", "cpu-parallel", "--validate"])
        .output()
        .expect("cli must run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("validation: OK"));
}

#[test]
fn rejects_unknown_flags_and_missing_input() {
    let out = cli().args(["--gen", "kronecker:8:4", "--bogus"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli().args(["--algo", "rdbs"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--gen or --load"));
}

#[test]
fn chaos_rejects_unknown_fault_model_and_names_the_valid_ones() {
    let out = cli().args(["chaos", "--model", "nope"]).output().unwrap();
    assert!(!out.status.success(), "an unknown fault model must not run a sweep");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown fault model 'nope'"), "stderr: {stderr}");
    for name in ["bit-flip", "dropped-atomic", "stale-read", "failed-child-launch"] {
        assert!(stderr.contains(name), "valid model '{name}' missing from: {stderr}");
    }
    // The adversarial mode shares the typo check.
    let out = cli().args(["chaos", "--adversarial", "--model", "nope"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown fault model"));
}

#[test]
fn chaos_adversarial_writes_a_replayable_corpus() {
    let dir = std::env::temp_dir().join("rdbs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.txt");
    let out = cli()
        .args([
            "chaos",
            "--adversarial",
            "--quick",
            "--entry",
            "gpu/refault",
            "--graph",
            "erdos",
            "--seed",
            "3",
            "--budget",
            "32",
            "--corpus-out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("cli must run");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no silent wrong answers"), "stdout: {stdout}");
    let corpus = std::fs::read_to_string(&path).unwrap();
    assert!(corpus.contains("entry=gpu/refault"), "corpus: {corpus}");
    assert!(corpus.contains("cap="), "corpus lines must record the injection cap: {corpus}");
}

#[test]
fn fuzz_schedules_quick_run_is_green() {
    let out = cli()
        .args(["fuzz-schedules", "--quick", "--entry", "gpu/full", "--perms", "2"])
        .output()
        .expect("cli must run");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("specimen alive"), "stdout: {stdout}");
}

#[test]
fn t4_device_and_seed_flags() {
    let out = cli()
        .args(["--gen", "erdos:500:2000", "--algo", "adds", "--device", "T4", "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ADDS"));
}
